#include "dsi/client.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace dsi::core {

namespace {

/// Watchdog: abort queries that fail to finish within this many broadcast
/// cycles (only reachable under extreme link-error rates). On a multi-disk
/// cycle the budget additionally scales with the disk count: the flat
/// sweep retries every pending frame once per cycle, but the permuted
/// layout serializes endgame retries (each lost cold frame costs its own
/// doze to a once-per-cycle airing), so worst-case recovery stretches by
/// about that factor.
constexpr uint64_t kWatchdogCycles = 200;

/// Aggressive kNN falls back to the conservative hop rule after this many
/// cycles so skipped ranges are eventually swept deterministically (the
/// paper's running example finishes in ~1.5 cycles).
constexpr uint64_t kAggressiveFallbackCycles = 2;

}  // namespace

DsiClient::DsiClient(const DsiIndex& index, broadcast::ClientSession* session)
    : index_(index),
      session_(session),
      layout_(index.num_frames(), index.config().num_segments),
      hc_cells_(index.mapper().curve().num_cells()),
      known_(layout_.m),
      learned_tables_(index.num_frames(), false),
      frames_done_(index.num_frames(), false) {
  for (uint32_t s = 0; s < layout_.m; ++s) {
    known_[s].Init(layout_.SegmentLength(s));
  }
}

// ---------------------------------------------------------------------------
// Public queries
// ---------------------------------------------------------------------------

std::vector<datasets::SpatialObject> DsiClient::PointQuery(
    const common::Point& p) {
  const uint64_t h = index_.mapper().PointToIndex(p);
  const hilbert::HcRange target{h, h};
  RunSearch(
      [&](std::vector<hilbert::HcRange>* out) { out->assign(1, target); },
      nullptr);
  std::vector<datasets::SpatialObject> out;
  for (const uint32_t rank : retrieved_ranks_) {
    if (index_.object_hc(rank) == h) {
      out.push_back(index_.sorted_objects()[rank]);
    }
  }
  return out;
}

std::vector<datasets::SpatialObject> DsiClient::WindowQuery(
    const common::Rect& window) {
  const std::vector<hilbert::HcRange> targets =
      index_.mapper().WindowToRanges(window);
  RunSearch(
      [&](std::vector<hilbert::HcRange>* out) {
        out->assign(targets.begin(), targets.end());
      },
      nullptr);
  std::vector<datasets::SpatialObject> out;
  for (const uint32_t rank : retrieved_ranks_) {
    const datasets::SpatialObject& obj = index_.sorted_objects()[rank];
    if (window.Contains(obj.location)) out.push_back(obj);
  }
  return out;
}

std::vector<datasets::SpatialObject> DsiClient::KnnQuery(
    const common::Point& q, size_t k, KnnStrategy strategy) {
  if (k == 0) return {};  // degenerate: the empty set, no listening needed
  const auto& mapper = index_.mapper();

  // Current search radius: k-th smallest upper-bound distance over exact
  // (retrieved) and advertised (index-table) candidates. The candidate
  // buffer is hoisted out of the refinement loop, per-advert distances are
  // memoized (hc and q are fixed for the query), and adverts superseded by
  // coverage stay superseded — covered_ only ever grows — so they are
  // retired behind a bitmap instead of re-testing Covers every iteration.
  struct AdvertCache {
    std::vector<uint64_t> dist_known;
    std::vector<uint64_t> superseded;
    std::unique_ptr<double[]> dist;
    void Init(uint32_t length) {
      const size_t words = (length + 63) / 64;
      dist_known.assign(words, 0);
      superseded.assign(words, 0);
      dist.reset(new double[length > 0 ? length : 1]);
    }
  };
  std::vector<AdvertCache> advert_cache(layout_.m);
  for (uint32_t s = 0; s < layout_.m; ++s) {
    advert_cache[s].Init(layout_.SegmentLength(s));
  }
  std::vector<double> uppers;
  // Exact distances of retrieved objects, memoized in rank order (the rank
  // list only gains elements, so a sorted-merge refresh computes each
  // distance once).
  std::vector<std::pair<uint32_t, double>> retrieved_dist;
  auto radius_upper_bound = [&]() -> double {
    uppers.clear();
    size_t ci = 0;
    for (const uint32_t rank : retrieved_ranks_) {
      double d;
      if (ci < retrieved_dist.size() && retrieved_dist[ci].first == rank) {
        d = retrieved_dist[ci].second;
      } else {
        d = common::Distance(q, index_.sorted_objects()[rank].location);
        retrieved_dist.insert(
            retrieved_dist.begin() + static_cast<ptrdiff_t>(ci), {rank, d});
      }
      uppers.push_back(d);
      ++ci;
    }
    const std::vector<hilbert::HcRange>& cov = covered_.ranges();
    for (uint32_t s = 0; s < layout_.m; ++s) {
      AdvertCache& cache = advert_cache[s];
      // Within a segment min-HC ascends with offset, so the coverage test
      // is a forward merge-walk instead of a binary search per advert.
      size_t cov_i = 0;
      known_[s].ForEachKnown([&](uint32_t off, uint64_t hc) {
        const uint64_t bit = uint64_t{1} << (off % 64);
        if (cache.superseded[off / 64] & bit) return;
        while (cov_i < cov.size() && cov[cov_i].hi < hc) ++cov_i;
        // Skip advertisements already superseded by exact retrievals
        // (coverage only grows, so superseded is a permanent state).
        if (cov_i < cov.size() && cov[cov_i].lo <= hc) {
          cache.superseded[off / 64] |= bit;
          return;
        }
        if (!(cache.dist_known[off / 64] & bit)) {
          cache.dist_known[off / 64] |= bit;
          cache.dist[off] = mapper.MaxDistanceToIndex(q, hc);
        }
        uppers.push_back(cache.dist[off]);
      });
    }
    if (uppers.size() < k) return std::numeric_limits<double>::infinity();
    std::nth_element(uppers.begin(), uppers.begin() + (k - 1), uppers.end());
    return uppers[k - 1];
  };

  double last_radius = std::numeric_limits<double>::quiet_NaN();
  auto recompute = [&](std::vector<hilbert::HcRange>* out) {
    const double r = radius_upper_bound();
    if (std::isinf(r)) {
      last_radius = r;
      out->assign(1, hilbert::HcRange{0, hc_cells_ - 1});
      return;
    }
    // Unchanged radius -> identical decomposition; the buffer still holds
    // it (recompute is its only writer).
    if (r == last_radius) return;
    last_radius = r;
    mapper.CircleToRanges(q, r, out);
  };

  RunSearch(recompute,
            strategy == KnnStrategy::kAggressive ? &q : nullptr);

  // Answer: the k nearest retrieved objects.
  std::vector<datasets::SpatialObject> out;
  out.reserve(retrieved_ranks_.size());
  for (const uint32_t rank : retrieved_ranks_) {
    out.push_back(index_.sorted_objects()[rank]);
  }
  std::sort(out.begin(), out.end(),
            [&](const datasets::SpatialObject& a,
                const datasets::SpatialObject& b) {
              const double da = common::SquaredDistance(q, a.location);
              const double db = common::SquaredDistance(q, b.location);
              return da != db ? da < db : a.id < b.id;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

// ---------------------------------------------------------------------------
// Search driver
// ---------------------------------------------------------------------------

template <class RecomputeTargets>
void DsiClient::RunSearch(const RecomputeTargets& recompute_targets,
                          const common::Point* spatial_goal) {
  session_->InitialProbe();
  generation_ = session_->generation();
  deadline_packets_ = session_->now_packets() +
                      kWatchdogCycles * session_->program().num_disks() *
                          session_->program().cycle_packets();
  const uint64_t aggressive_deadline =
      session_->now_packets() +
      kAggressiveFallbackCycles * index_.program().cycle_packets();

  if (!ReadNextTable()) {
    stats_.completed = false;
    return;
  }

  std::vector<hilbert::HcRange>& pending = pending_scratch_;
  while (true) {
    recompute_targets(&targets_scratch_);
    covered_.SubtractInto(targets_scratch_, &pending);
    if (pending.empty()) return;

    if (FrameMayIntersect(table_.position, pending)) {
      ReadFrameObjects(table_.position, table_.own_hc_min);
      if (stats_.stale) {
        stats_.completed = false;
        return;
      }
      recompute_targets(&targets_scratch_);
      covered_.SubtractInto(targets_scratch_, &pending);
      if (pending.empty()) return;
    }

    if (WatchdogExpired()) {
      stats_.completed = false;
      return;
    }

    const bool aggressive =
        spatial_goal != nullptr &&
        session_->now_packets() < aggressive_deadline;
    const uint32_t next_pos =
        aggressive ? SelectAggressiveHop(table_, pending, *spatial_goal)
                   : SelectConservativeHop(table_, pending);
    ++stats_.hops;
    if (!ReadTableAt(next_pos)) {
      stats_.completed = false;
      return;
    }
  }
}

bool DsiClient::WatchdogExpired() const {
  return session_->now_packets() >= deadline_packets_;
}

bool DsiClient::SessionStale() const {
  return session_->generation() != generation_;
}

// ---------------------------------------------------------------------------
// On-air reads
// ---------------------------------------------------------------------------

bool DsiClient::ReadNextTable() {
  const auto& program = index_.program();
  const size_t nb = program.num_buckets();
  while (!WatchdogExpired()) {
    // Find the next table bucket at or after the session's position. The
    // scan is structural: every on-air packet carries the offset to the
    // next index table in its header.
    size_t slot = session_->current_slot();
    size_t guard = 0;
    while (program.bucket(slot).kind != broadcast::BucketKind::kDsiFrameTable) {
      slot = (slot + 1) % nb;
      if (++guard > nb) return false;  // no table in program
    }
    if (session_->ReadBucket(slot)) {
      ++stats_.tables_read;
      index_.TableAt(program.bucket(slot).payload, &table_);
      Learn(table_);
      return true;
    }
    if (SessionStale()) {
      // Republished mid-query: the slot vocabulary just died with the old
      // layout — no further reads under it.
      stats_.stale = true;
      return false;
    }
    ++stats_.buckets_lost;
    // Link error: resume from the next frame's table (fully distributed
    // recovery, Section 5).
  }
  return false;
}

bool DsiClient::ReadTableAt(uint32_t position) {
  if (session_->ReadBucket(index_.TableSlot(position))) {
    ++stats_.tables_read;
    index_.TableAt(position, &table_);
    Learn(table_);
    return true;
  }
  if (SessionStale()) {
    stats_.stale = true;
    return false;
  }
  ++stats_.buckets_lost;
  return ReadNextTable();
}

void DsiClient::ReadFrameObjects(uint32_t position, uint64_t own_hc) {
  const DsiIndex::FrameObjects fo = index_.ObjectsAt(position);
  bool all_present = true;
  uint64_t max_hc = own_hc;
  for (uint32_t i = 0; i < fo.count; ++i) {
    const uint32_t rank = fo.first_rank + i;
    if (!Retrieved(rank)) {
      if (session_->ReadBucket(fo.first_slot + i)) {
        MarkRetrieved(rank);
        ++stats_.objects_read;
      } else {
        if (SessionStale()) {
          stats_.stale = true;
          return;
        }
        ++stats_.buckets_lost;
        all_present = false;
        continue;
      }
    }
    max_hc = std::max(max_hc, index_.object_hc(rank));
  }
  if (!all_present) return;  // span unconfirmed; revisited next cycle

  // Confirm the frame's HC span. Frames never split equal-HC runs, so all
  // dataset objects with HC in [own_hc, max_hc] live in this frame; if the
  // next frame boundary is known the whole [own_hc, next) span is confirmed.
  const uint32_t seg = layout_.SegmentOfPosition(position);
  const uint32_t off = layout_.OffsetOfPosition(position);
  if (const std::optional<uint64_t> next = NextFrameHcExcl(seg, off)) {
    assert(*next > own_hc);
    covered_.Add(hilbert::HcRange{own_hc, *next - 1});
  } else {
    covered_.Add(hilbert::HcRange{own_hc, max_hc});
  }
  frames_done_[position] = true;
}

// ---------------------------------------------------------------------------
// Knowledge
// ---------------------------------------------------------------------------

void DsiClient::Learn(const DsiTableView& table) {
  if (!heads_known_) {
    heads_known_ = true;  // every table carries the segment head HC values
    // The head of segment 0 is the global minimum HC value: no object can
    // have a smaller one, so that prefix of the HC space is vacuously
    // covered.
    const uint64_t head0 = index_.segment_head_hcs().front();
    if (head0 > 0) covered_.Add(hilbert::HcRange{0, head0 - 1});
  }
  // A table's content is a pure function of its broadcast position, so
  // re-reading one (the EEF loop revisits tables constantly) teaches
  // nothing new — skip the entry recording wholesale.
  if (learned_tables_[table.position]) return;
  learned_tables_[table.position] = true;
  auto record = [&](uint32_t pos, uint64_t hc) {
    known_[layout_.SegmentOfPosition(pos)].Record(layout_.OffsetOfPosition(pos),
                                                  hc);
  };
  record(table.position, table.own_hc_min);
  for (const DsiTableEntry& e : table.entries) record(e.position, e.hc_min);
}

uint64_t DsiClient::SegmentDomainLo(uint32_t seg) const {
  assert(heads_known_);
  return index_.segment_head_hcs()[seg];
}

uint64_t DsiClient::SegmentDomainHiExcl(uint32_t seg) const {
  assert(heads_known_);
  return seg + 1 < layout_.m ? index_.segment_head_hcs()[seg + 1] : hc_cells_;
}

uint64_t DsiClient::LowerBoundHc(uint32_t seg, uint32_t off) const {
  if (const auto v = known_[seg].FloorValue(off)) return *v;
  return SegmentDomainLo(seg);
}

uint64_t DsiClient::UpperBoundHcExcl(uint32_t seg, uint32_t off) const {
  if (const auto v = known_[seg].CeilAboveValue(off)) return *v;
  return SegmentDomainHiExcl(seg);
}

std::optional<uint64_t> DsiClient::NextFrameHcExcl(uint32_t seg,
                                                   uint32_t off) const {
  if (off + 1 >= layout_.SegmentLength(seg)) return SegmentDomainHiExcl(seg);
  return known_[seg].Find(off + 1);
}

// ---------------------------------------------------------------------------
// Retrieved objects
// ---------------------------------------------------------------------------

bool DsiClient::Retrieved(uint32_t rank) const {
  return std::binary_search(retrieved_ranks_.begin(), retrieved_ranks_.end(),
                            rank);
}

void DsiClient::MarkRetrieved(uint32_t rank) {
  auto it = std::lower_bound(retrieved_ranks_.begin(), retrieved_ranks_.end(),
                             rank);
  assert(it == retrieved_ranks_.end() || *it != rank);
  retrieved_ranks_.insert(it, rank);
}

// ---------------------------------------------------------------------------
// Relevance reasoning
// ---------------------------------------------------------------------------

bool DsiClient::RangesIntersect(const std::vector<hilbert::HcRange>& pending,
                                uint64_t lo, uint64_t hi_excl) const {
  if (lo >= hi_excl) return false;
  const uint64_t hi = hi_excl - 1;
  auto it = std::lower_bound(
      pending.begin(), pending.end(), lo,
      [](const hilbert::HcRange& r, uint64_t v) { return r.hi < v; });
  return it != pending.end() && it->lo <= hi;
}

bool DsiClient::FrameMayIntersect(
    uint32_t position, const std::vector<hilbert::HcRange>& pending) const {
  const uint32_t seg = layout_.SegmentOfPosition(position);
  const uint32_t off = layout_.OffsetOfPosition(position);
  const uint64_t lo = LowerBoundHc(seg, off);
  const uint64_t hi_excl = UpperBoundHcExcl(seg, off);
  return RangesIntersect(pending, lo, hi_excl);
}

bool DsiClient::GapMayIntersect(
    uint32_t from_pos, uint32_t to_pos,
    const std::vector<hilbert::HcRange>& pending) const {
  const uint32_t n = layout_.num_frames;
  const uint32_t gap = (to_pos + n - from_pos) % n;
  if (gap <= 1) return false;  // empty gap

  // Positions strictly between, as one or two linear windows.
  const uint32_t lo = (from_pos + 1) % n;
  const uint32_t hi = (to_pos + n - 1) % n;
  struct Window {
    uint32_t a, b;
  };
  Window windows[2];
  int nw = 0;
  if (lo <= hi) {
    windows[nw++] = {lo, hi};
  } else {
    windows[nw++] = {lo, n - 1};
    windows[nw++] = {0, hi};
  }

  for (int w = 0; w < nw; ++w) {
    const uint32_t a = windows[w].a;
    const uint32_t b = windows[w].b;
    for (uint32_t s = 0; s < layout_.m; ++s) {
      // Full-round positions of segment s are o*m + s for o in [0, base).
      if (layout_.base > 0) {
        const uint32_t o_lo = a <= s ? 0 : (a - s + layout_.m - 1) / layout_.m;
        const uint32_t o_hi_raw = b < s ? 0 : (b - s) / layout_.m;
        const bool has = b >= s && o_lo <= o_hi_raw && o_lo < layout_.base;
        if (has) {
          const uint32_t o_hi = std::min(o_hi_raw, layout_.base - 1);
          if (o_lo <= o_hi &&
              RangesIntersect(pending, LowerBoundHc(s, o_lo),
                              UpperBoundHcExcl(s, o_hi))) {
            return true;
          }
        }
      }
      // Tail round: position base*m + s exists iff s < extra.
      if (s < layout_.extra) {
        const uint32_t pt = layout_.base * layout_.m + s;
        if (a <= pt && pt <= b &&
            RangesIntersect(pending, LowerBoundHc(s, layout_.base),
                            UpperBoundHcExcl(s, layout_.base))) {
          return true;
        }
      }
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Navigation
// ---------------------------------------------------------------------------

uint32_t DsiClient::SelectConservativeHop(
    const DsiTableView& table,
    const std::vector<hilbert::HcRange>& pending) const {
  // A single-frame broadcast has an empty table (no frame to point at);
  // the only possible hop is the frame itself, next cycle — reachable when
  // a link error left part of the lone frame unretrieved.
  if (table.entries.empty()) return table.position;
  // Multi-disk cycles: frame position no longer tracks on-air order, so
  // the farthest-qualifying-gap rule below — tuned for a sequential sweep
  // — would pay an arbitrary doze on every hop. Visit instead the
  // possibly-relevant frame whose table airs soonest, over EVERY frame of
  // the cycle, not just the current table's exponential entries: the entry
  // list aims logarithmically far in logical order, and bouncing to a
  // listed-but-cold frame when an unlisted hot one airs first costs a doze
  // per hop. Relevance uses only learned bounds (loose for unheard frames)
  // and TableSlot is structural layout knowledge, the same the flat client
  // uses to resolve entry pointers. Confirmed-done frames are excluded —
  // they have nothing left to teach, and a hot one whose loose upper bound
  // still brushes pending would win the wait race forever. Every pending
  // target lies inside some not-done frame's conservative bounds, so the
  // scan always finds a candidate while pending is non-empty; false
  // positives tighten on read and the set shrinks monotonically.
  if (session_->program().multi_disk()) {
    uint64_t best_wait = 0;
    uint32_t best_pos = 0;
    bool found = false;
    for (uint32_t pos = 0; pos < layout_.num_frames; ++pos) {
      if (frames_done_[pos] || !FrameMayIntersect(pos, pending)) continue;
      const uint64_t wait = session_->PacketsUntil(index_.TableSlot(pos));
      if (!found || wait < best_wait) {
        found = true;
        best_wait = wait;
        best_pos = pos;
      }
    }
    if (found) return best_pos;
  }
  // Farthest entry whose skipped gap provably cannot hold pending targets.
  for (auto it = table.entries.rbegin(); it != table.entries.rend(); ++it) {
    if (!GapMayIntersect(table.position, it->position, pending)) {
      return it->position;
    }
  }
  // Entry 0 always qualifies (empty gap); defensive fallback.
  return table.entries.front().position;
}

uint32_t DsiClient::SelectAggressiveHop(
    const DsiTableView& table, const std::vector<hilbert::HcRange>& pending,
    const common::Point& q) const {
  if (table.entries.empty()) return table.position;  // single-frame broadcast
  // Paper rule: follow the entry pointing to the frame closest to the query
  // point (fast search-space convergence; skipped ranges wrap to the next
  // cycle). Only frames that may still matter qualify — once the local
  // region is resolved the search degenerates to the conservative sweep
  // ("sequentially retrieving all the data objects located within the
  // search space", Section 3.4). Ties prefer the farther reach.
  double best = std::numeric_limits<double>::infinity();
  uint32_t best_pos = table.entries.front().position;
  bool found = false;
  for (auto it = table.entries.rbegin(); it != table.entries.rend(); ++it) {
    if (!FrameMayIntersect(it->position, pending)) continue;
    const double d = index_.mapper().MinDistanceToIndex(q, it->hc_min);
    if (d < best) {
      best = d;
      best_pos = it->position;
      found = true;
    }
  }
  return found ? best_pos : SelectConservativeHop(table, pending);
}

}  // namespace dsi::core
