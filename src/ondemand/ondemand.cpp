#include "ondemand/ondemand.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dsi::ondemand {

OnDemandStats SimulateQueue(const std::vector<Arrival>& arrivals,
                            const OnDemandConfig& config) {
  OnDemandStats stats;
  stats.queries = arrivals.size();
  if (arrivals.empty()) return stats;
  assert(std::is_sorted(arrivals.begin(), arrivals.end(),
                        [](const Arrival& a, const Arrival& b) {
                          return a.time < b.time;
                        }));
  double server_free = 0.0;
  double busy = 0.0;
  double total_latency = 0.0;
  double total_wait = 0.0;
  for (const Arrival& a : arrivals) {
    // The request itself rides the uplink before service can start.
    const double ready = a.time + static_cast<double>(config.request_bytes);
    const double start = std::max(ready, server_free);
    const double service =
        static_cast<double>(config.processing_bytes) +
        static_cast<double>(config.per_result_bytes) *
            static_cast<double>(a.result_objects);
    const double done = start + service;
    total_wait += start - ready;
    total_latency += done - a.time;
    busy += service;
    server_free = done;
  }
  const double n = static_cast<double>(arrivals.size());
  stats.mean_latency_bytes = total_latency / n;
  stats.mean_queue_wait_bytes = total_wait / n;
  const double span = server_free - arrivals.front().time;
  stats.utilization = span > 0.0 ? busy / span : 0.0;
  return stats;
}

std::vector<Arrival> MakePoissonArrivals(double rate, double horizon_bytes,
                                         uint64_t min_results,
                                         uint64_t max_results,
                                         common::Rng* rng) {
  assert(rate > 0.0);
  assert(min_results <= max_results);
  std::vector<Arrival> arrivals;
  double t = 0.0;
  while (true) {
    // Exponential inter-arrival times.
    const double u = rng->Uniform(1e-12, 1.0);
    t += -std::log(u) / rate;
    if (t >= horizon_bytes) break;
    Arrival a;
    a.time = t;
    a.result_objects = static_cast<uint64_t>(
        rng->UniformInt(static_cast<int64_t>(min_results),
                        static_cast<int64_t>(max_results)));
    arrivals.push_back(a);
  }
  return arrivals;
}

}  // namespace dsi::ondemand
