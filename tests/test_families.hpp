#pragma once

/// \file test_families.hpp
/// \brief Shared test fixture: all four index families built over one
/// object set behind their AirIndexHandle fronts, so cross-family tests
/// (trajectory parity, metamorphic battery) iterate one handle list
/// instead of repeating the construction boilerplate.

#include <vector>

#include "air/dsi_handle.hpp"
#include "air/exp_handle.hpp"
#include "air/hci_handle.hpp"
#include "air/rtree_handle.hpp"
#include "datasets/datasets.hpp"
#include "dsi/index.hpp"
#include "hci/hci.hpp"
#include "hilbert/space_mapper.hpp"
#include "rtree/rtree_air.hpp"

namespace dsi::test {

/// All four families over one object set (plus the shared mapper).
struct Families {
  hilbert::SpaceMapper mapper;
  core::DsiIndex dsi;
  rtree::RtreeIndex rtree;
  hci::HciIndex hci;
  air::DsiHandle dsi_h;
  air::RtreeHandle rtree_h;
  air::HciHandle hci_h;
  air::ExpHandle exp_h;

  explicit Families(const std::vector<datasets::SpatialObject>& objects,
                    uint32_t m = 1, size_t capacity = 64, int order = 6)
      : mapper(datasets::UnitUniverse(), order),
        dsi(objects, mapper, capacity,
            [m] {
              core::DsiConfig c;
              c.num_segments = m;
              return c;
            }()),
        rtree(objects, capacity),
        hci(objects, mapper, capacity),
        dsi_h(dsi),
        rtree_h(rtree),
        hci_h(hci),
        exp_h(objects, mapper, capacity) {}

  std::vector<const air::AirIndexHandle*> handles() const {
    return {&dsi_h, &rtree_h, &hci_h, &exp_h};
  }
};

}  // namespace dsi::test
