#pragma once

/// \file rtree_handle.hpp
/// \brief AirIndexHandle wrapper for the R-tree air-index baseline.

#include <memory>
#include <string_view>

#include "air/air_index.hpp"
#include "rtree/rtree_air.hpp"

namespace dsi::air {

/// Non-owning handle over a built rtree::RtreeIndex.
class RtreeHandle : public AirIndexHandle {
 public:
  explicit RtreeHandle(const rtree::RtreeIndex& index) : index_(index) {}

  std::string_view family() const override { return "rtree"; }
  const broadcast::BroadcastProgram& program() const override {
    return index_.program();
  }
  std::unique_ptr<AirClient> MakeClient(
      broadcast::ClientSession* session) const override;
  AirClient* MakeClientIn(ClientArena& arena,
                          broadcast::ClientSession* session) const override;
  bool SlotAnchor(size_t slot, common::Point* anchor) const override {
    const broadcast::Bucket& b = program().bucket(slot);
    if (b.kind != broadcast::BucketKind::kDataObject) return false;
    *anchor = index_.str_objects()[b.payload].location;
    return true;
  }
  std::vector<double> DiskWeights(
      const datasets::RegionPopularity& popularity,
      const common::Rect& universe) const override;

  const rtree::RtreeIndex& index() const { return index_; }

 private:
  const rtree::RtreeIndex& index_;
};

}  // namespace dsi::air
