/// Cross-family metamorphic battery: properties that must relate the
/// results of DIFFERENT queries to each other, with no oracle in sight —
/// they hold for any correct spatial query engine, so a violation
/// implicates the engine even where a brute-force comparison would agree
/// by accident.
///
///  * Monotonicity: shrinking a window can only shrink its result set
///    (subset, never new members).
///  * kNN prefix: the k nearest are a prefix-by-distance of the k+1
///    nearest. Compared on sorted distance multisets, so ties may swap ids
///    without violating the property.
///  * Totality: a window covering the whole universe returns every object.
///
/// All four families, clean channel, real engine execution (mid-cycle
/// tune-ins via sim::RunWorkload).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "datasets/datasets.hpp"
#include "sim/runner.hpp"
#include "sim/workload.hpp"
#include "test_families.hpp"

namespace dsi {
namespace {

using test::Families;

constexpr size_t kQueries = 10;

std::vector<datasets::SpatialObject> TestObjects() {
  return datasets::MakeClustered(200, 5, 0.03, 0.25,
                                 datasets::UnitUniverse(), 83);
}

/// Scales \p r by \p f around its center.
common::Rect ShrinkAroundCenter(const common::Rect& r, double f) {
  const double cx = (r.min_x + r.max_x) / 2.0;
  const double cy = (r.min_y + r.max_y) / 2.0;
  const double hw = r.Width() / 2.0 * f;
  const double hh = r.Height() / 2.0 * f;
  return common::Rect{cx - hw, cy - hh, cx + hw, cy + hh};
}

std::vector<sim::QueryResult> RunQueries(const air::AirIndexHandle& h,
                                  const sim::Workload& wl, uint64_t seed) {
  std::vector<sim::QueryResult> results;
  sim::RunOptions opt;
  opt.seed = seed;
  opt.results = &results;
  sim::RunWorkload(h, wl, opt);
  for (const sim::QueryResult& r : results) {
    EXPECT_TRUE(r.completed);  // clean channel: every query must finish
  }
  return results;
}

TEST(MetamorphicTest, ShrunkWindowResultIsSubsetOfOriginal) {
  const auto objects = TestObjects();
  for (const uint32_t m : {1u, 2u}) {
    const Families fams(objects, m);
    const auto windows = sim::MakeWindowWorkload(
        kQueries, 0.3, datasets::UnitUniverse(), 17);
    std::vector<common::Rect> shrunk;
    common::Rng rng(29);
    for (const common::Rect& w : windows) {
      shrunk.push_back(ShrinkAroundCenter(w, rng.Uniform(0.2, 0.9)));
    }
    for (const air::AirIndexHandle* h : fams.handles()) {
      const auto big = RunQueries(*h, sim::Workload::Window(windows), 5);
      const auto small = RunQueries(*h, sim::Workload::Window(shrunk), 5);
      for (size_t i = 0; i < kQueries; ++i) {
        EXPECT_TRUE(std::includes(big[i].ids.begin(), big[i].ids.end(),
                                  small[i].ids.begin(), small[i].ids.end()))
            << h->family() << " m=" << m << " window " << i
            << ": shrunk result not a subset (" << small[i].ids.size()
            << " vs " << big[i].ids.size() << " ids)";
      }
    }
  }
}

TEST(MetamorphicTest, KnnIsDistancePrefixOfKnnPlusOne) {
  const auto objects = TestObjects();
  const Families fams(objects, 2);
  const auto points =
      sim::MakeKnnWorkload(kQueries, datasets::UnitUniverse(), 37);
  for (const air::AirIndexHandle* h : fams.handles()) {
    for (const size_t k : {1u, 4u, 9u}) {
      const auto smaller = RunQueries(*h, sim::Workload::Knn(points, k), 7);
      const auto larger = RunQueries(*h, sim::Workload::Knn(points, k + 1), 7);
      for (size_t i = 0; i < kQueries; ++i) {
        ASSERT_EQ(smaller[i].knn_distances.size(), k) << h->family();
        ASSERT_EQ(larger[i].knn_distances.size(), k + 1) << h->family();
        // Tie-aware prefix: the sorted distance multiset of kNN(k) must be
        // exactly the first k entries of kNN(k+1)'s.
        for (size_t j = 0; j < k; ++j) {
          EXPECT_EQ(smaller[i].knn_distances[j], larger[i].knn_distances[j])
              << h->family() << " point " << i << " k=" << k
              << " position " << j;
        }
      }
    }
  }
}

TEST(MetamorphicTest, UniverseWindowReturnsEveryObject) {
  const auto objects = TestObjects();
  const Families fams(objects, 1);
  std::vector<uint32_t> all_ids;
  all_ids.reserve(objects.size());
  for (const auto& o : objects) all_ids.push_back(o.id);
  std::sort(all_ids.begin(), all_ids.end());
  const common::Rect u = datasets::UnitUniverse();
  // The universe itself and a window strictly containing it.
  const std::vector<common::Rect> windows{
      u, common::Rect{u.min_x - 0.5, u.min_y - 0.5, u.max_x + 0.5,
                      u.max_y + 0.5}};
  for (const air::AirIndexHandle* h : fams.handles()) {
    const auto results = RunQueries(*h, sim::Workload::Window(windows), 3);
    for (size_t i = 0; i < windows.size(); ++i) {
      EXPECT_EQ(results[i].ids, all_ids)
          << h->family() << " window " << i << " returned "
          << results[i].ids.size() << " of " << all_ids.size() << " objects";
    }
  }
}

}  // namespace
}  // namespace dsi
