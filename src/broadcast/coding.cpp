#include "broadcast/coding.hpp"

#include <algorithm>
#include <cassert>

namespace dsi::broadcast {

BroadcastProgram MakeCodedProgram(const BroadcastProgram& data,
                                  const CodingConfig& config) {
  assert(data.finalized());
  if (!config.enabled() || data.num_buckets() == 0) return data;
  // Client-side reconstruction tracks group members in a 64-bit survivor
  // mask; far beyond any sensible redundancy schedule anyway.
  assert(static_cast<size_t>(config.group) + config.parity <= 64);

  BroadcastProgram coded(data.packet_capacity());
  const size_t n = data.num_buckets();
  uint32_t group_index = 0;
  uint32_t group_max_bytes = 0;
  uint32_t in_group = 0;
  for (size_t slot = 0; slot < n; ++slot) {
    const Bucket& b = data.bucket(slot);
    coded.AddBucket(b.kind, b.payload, b.size_bytes);
    group_max_bytes = std::max(group_max_bytes, b.size_bytes);
    if (++in_group == config.group || slot + 1 == n) {
      // Parity symbols are padded to the widest member (an XOR/RS code
      // word spans whole buckets), so each costs the group's maximum
      // bucket airtime. The short wrap-around group at the cycle end is
      // protected exactly like a full one.
      for (uint32_t q = 0; q < config.parity; ++q) {
        coded.AddBucket(BucketKind::kParity, group_index, group_max_bytes);
      }
      ++group_index;
      in_group = 0;
      group_max_bytes = 0;
    }
  }
  coded.SetCodingSchedule(config.group, config.parity, n);
  coded.Finalize();
  return coded;
}

}  // namespace dsi::broadcast
