#include "common/geometry.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dsi::common {
namespace {

TEST(PointTest, DistanceBasics) {
  const Point a{0.0, 0.0};
  const Point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(Distance(a, a), 0.0);
}

TEST(RectTest, EmptyRect) {
  const Rect e = Rect::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_DOUBLE_EQ(e.Width(), 0.0);
  EXPECT_DOUBLE_EQ(e.Area(), 0.0);
  EXPECT_FALSE(e.Intersects(Rect{0, 0, 1, 1}));
}

TEST(RectTest, ContainsPointClosedBoundaries) {
  const Rect r{0.0, 0.0, 1.0, 2.0};
  EXPECT_TRUE(r.Contains(Point{0.0, 0.0}));
  EXPECT_TRUE(r.Contains(Point{1.0, 2.0}));
  EXPECT_TRUE(r.Contains(Point{0.5, 1.0}));
  EXPECT_FALSE(r.Contains(Point{1.0001, 1.0}));
  EXPECT_FALSE(r.Contains(Point{0.5, -0.0001}));
}

TEST(RectTest, ContainsRect) {
  const Rect outer{0, 0, 10, 10};
  EXPECT_TRUE(outer.Contains(Rect{1, 1, 9, 9}));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Rect{-1, 1, 9, 9}));
  EXPECT_FALSE(outer.Contains(Rect{1, 1, 9, 11}));
}

TEST(RectTest, IntersectsSharedEdgeAndCorner) {
  const Rect a{0, 0, 1, 1};
  EXPECT_TRUE(a.Intersects(Rect{1, 0, 2, 1}));  // shared edge
  EXPECT_TRUE(a.Intersects(Rect{1, 1, 2, 2}));  // shared corner
  EXPECT_FALSE(a.Intersects(Rect{1.01, 0, 2, 1}));
}

TEST(RectTest, ExpandToInclude) {
  Rect r = Rect::Empty();
  r.ExpandToInclude(Point{2, 3});
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
  r.ExpandToInclude(Point{-1, 5});
  EXPECT_EQ(r, (Rect{-1, 3, 2, 5}));
  r.ExpandToInclude(Rect{0, 0, 1, 1});
  EXPECT_EQ(r, (Rect{-1, 0, 2, 5}));
  r.ExpandToInclude(Rect::Empty());
  EXPECT_EQ(r, (Rect{-1, 0, 2, 5}));
}

TEST(RectTest, BoundingBox) {
  const Rect r = Rect::BoundingBox(
      {Point{1, 1}, Point{-2, 4}, Point{3, 0}});
  EXPECT_EQ(r, (Rect{-2, 0, 3, 4}));
}

TEST(RectTest, MinSquaredDistanceInsideIsZero) {
  const Rect r{0, 0, 2, 2};
  EXPECT_DOUBLE_EQ(r.MinSquaredDistance(Point{1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(r.MinSquaredDistance(Point{0, 0}), 0.0);
}

TEST(RectTest, MinSquaredDistanceOutside) {
  const Rect r{0, 0, 2, 2};
  EXPECT_DOUBLE_EQ(r.MinSquaredDistance(Point{3, 1}), 1.0);   // right side
  EXPECT_DOUBLE_EQ(r.MinSquaredDistance(Point{3, 3}), 2.0);   // corner
  EXPECT_DOUBLE_EQ(r.MinSquaredDistance(Point{-2, -2}), 8.0); // corner
}

TEST(RectTest, MaxSquaredDistance) {
  const Rect r{0, 0, 2, 2};
  EXPECT_DOUBLE_EQ(r.MaxSquaredDistance(Point{0, 0}), 8.0);
  EXPECT_DOUBLE_EQ(r.MaxSquaredDistance(Point{1, 1}), 2.0);
  EXPECT_DOUBLE_EQ(r.MaxSquaredDistance(Point{3, 1}), 10.0);
}

TEST(RectTest, MinMaxDistanceConsistencyProperty) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    const Rect r{rng.Uniform(0, 1), rng.Uniform(0, 1),
                 rng.Uniform(1, 2), rng.Uniform(1, 2)};
    const Point q{rng.Uniform(-1, 3), rng.Uniform(-1, 3)};
    const double mind = r.MinSquaredDistance(q);
    const double maxd = r.MaxSquaredDistance(q);
    EXPECT_LE(mind, maxd);
    // Distance to the center must be between the two bounds.
    const double dc = SquaredDistance(q, r.Center());
    EXPECT_LE(mind, dc + 1e-12);
    EXPECT_GE(maxd, dc - 1e-12);
  }
}

TEST(MakeClippedWindowTest, ClipsAtUniverseBoundary) {
  const Rect u{0, 0, 1, 1};
  const Rect w = MakeClippedWindow(Point{0.05, 0.5}, 0.2, u);
  EXPECT_DOUBLE_EQ(w.min_x, 0.0);
  EXPECT_DOUBLE_EQ(w.max_x, 0.15);
  EXPECT_DOUBLE_EQ(w.min_y, 0.4);
  EXPECT_DOUBLE_EQ(w.max_y, 0.6);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ForkIndependence) {
  Rng a(5);
  Rng fork = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(5);
  (void)b.engine()();  // parent consumed one draw for the fork
  EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  (void)fork;
}

}  // namespace
}  // namespace dsi::common
