#pragma once

/// \file client.hpp
/// \brief Client-side DSI query processing (Sections 3.2 - 3.5).
///
/// A DsiClient drives a broadcast::ClientSession: every piece of index or
/// object information it uses is paid for by listening to the corresponding
/// bucket. The implementation generalizes the paper's algorithms so one
/// machinery handles the original (m = 1) and reorganized (m >= 2)
/// broadcasts:
///
///  * Knowledge: (broadcast position -> min-HC) pairs learned from received
///    index tables, kept per segment; within a segment HC grows with
///    position, so knowledge brackets the HC content of unvisited frames.
///  * Targets: the pending HC ranges the query must still confirm (window
///    target segments, or the ranges under the current kNN search circle).
///  * Coverage: once a frame's objects are all retrieved and the next frame
///    boundary is known, its HC span is confirmed and removed from targets.
///  * Navigation: energy-efficient forwarding (EEF) emerges from the hop
///    rule "follow the farthest table entry whose skipped gap provably
///    cannot intersect the pending targets"; the aggressive kNN strategy
///    instead hops to the advertised frame spatially closest to the query
///    point, accepting next-cycle revisits (Section 3.4).
///
/// Link errors: a lost table is recovered by reading the next frame's table
/// (the fully distributed structure at work); a lost object bucket simply
/// leaves its frame's span unconfirmed, so the loop revisits it next cycle.
///
/// Hot-path design: all per-query state lives in flat sorted vectors
/// (knowledge, retrieved ranks) and the search loop reuses scratch buffers
/// for targets/pending ranges, so a query allocates only while those
/// buffers warm up — nothing per loop iteration or per hop.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "broadcast/client.hpp"
#include "common/geometry.hpp"
#include "dsi/index.hpp"
#include "dsi/layout.hpp"
#include "hilbert/interval_set.hpp"

namespace dsi::core {

/// kNN search-space strategies of Section 3.4.
enum class KnnStrategy {
  kConservative,  ///< Visit every frame that may hold a candidate.
  kAggressive,    ///< Hop toward the query point; revisit skipped ranges.
};

/// Per-query diagnostics (metrics proper come from the ClientSession).
struct QueryStats {
  uint64_t tables_read = 0;
  uint64_t objects_read = 0;
  uint64_t buckets_lost = 0;
  uint64_t hops = 0;
  bool completed = true;  ///< False if the query was aborted.
  /// True if the broadcast was republished mid-query: every learned table,
  /// SegmentKnowledge entry and coverage interval referred to the dead
  /// layout, so the client aborted with partial results. Re-issue the query
  /// with a fresh client bound to the new generation's index.
  bool stale = false;
};

/// Flat (offset -> min-HC) knowledge for one broadcast segment. Offsets are
/// dense in [0, segment length), so knowledge is a direct-indexed value
/// array plus a presence bitmap: recording is O(1) and the
/// predecessor/successor queries the navigation rules issue per hop are
/// short word scans over the bitmap (the client's knowledge clusters around
/// the offsets it travels through).
class SegmentKnowledge {
 public:
  /// \param length Segment length in frames; offsets are < length. The
  /// value array is left uninitialized — the bitmap is the source of truth.
  void Init(uint32_t length) {
    length_ = length;
    words_ = (length + 63) / 64;
    hc_.reset(new uint64_t[length_ > 0 ? length_ : 1]);
    bits_.assign(words_, 0);
  }

  void Record(uint32_t off, uint64_t hc) {
    bits_[off / 64] |= uint64_t{1} << (off % 64);
    hc_[off] = hc;
  }

  /// Value of the last known offset <= \p off, or nullopt.
  std::optional<uint64_t> FloorValue(uint32_t off) const {
    size_t w = off / 64;
    uint64_t word = bits_[w] & ((uint64_t{2} << (off % 64)) - 1);
    while (word == 0) {
      if (w == 0) return std::nullopt;
      word = bits_[--w];
    }
    return hc_[w * 64 + (63 - std::countl_zero(word))];
  }

  /// Value of the first known offset > \p off, or nullopt.
  std::optional<uint64_t> CeilAboveValue(uint32_t off) const {
    size_t w = off / 64;
    uint64_t word = bits_[w] & ~((uint64_t{2} << (off % 64)) - 1);
    while (word == 0) {
      if (++w >= words_) return std::nullopt;
      word = bits_[w];
    }
    return hc_[w * 64 + std::countr_zero(word)];
  }

  /// Exact-offset lookup.
  std::optional<uint64_t> Find(uint32_t off) const {
    if ((bits_[off / 64] >> (off % 64)) & 1) return hc_[off];
    return std::nullopt;
  }

  /// Invokes \p f(offset, hc) for every known entry, ascending by offset.
  template <class F>
  void ForEachKnown(F&& f) const {
    for (size_t w = 0; w < words_; ++w) {
      for (uint64_t word = bits_[w]; word != 0; word &= word - 1) {
        const uint32_t off =
            static_cast<uint32_t>(w * 64 + std::countr_zero(word));
        f(off, hc_[off]);
      }
    }
  }

 private:
  uint32_t length_ = 0;
  size_t words_ = 0;
  std::unique_ptr<uint64_t[]> hc_;  // by offset; valid where the bit is set
  std::vector<uint64_t> bits_;
};

/// Query execution against a DSI broadcast. One client serves one query —
/// or, kept alive on the same session, a stream of them (the paper's
/// moving client re-issuing queries as it travels): SegmentKnowledge, the
/// learned-table bitmap, confirmed coverage and retrieved objects all
/// describe the broadcast content itself, so they stay valid across
/// queries within one generation and shrink each follow-up search. Call
/// BeginQuery() before every re-evaluation; when session->generation()
/// advances, the knowledge describes a dead layout — discard the client
/// and build a fresh one against the new generation's index.
class DsiClient {
 public:
  /// \param session A fresh session (InitialProbe not yet called); the
  /// client performs the probe itself.
  DsiClient(const DsiIndex& index, broadcast::ClientSession* session);

  /// Arms the next query of a continuous client: clears the per-query
  /// completed/stale flags (the search loop re-arms its own watchdog).
  /// Learned knowledge is kept — it is what makes the warm client cheap.
  void BeginQuery() {
    stats_.completed = true;
    stats_.stale = false;
  }

  /// Point query via EEF: all objects whose HC value equals that of the
  /// cell containing \p p and whose location equals... is within the cell.
  /// Returns the objects mapped to that cell.
  std::vector<datasets::SpatialObject> PointQuery(const common::Point& p);

  /// Window query (Algorithm 1): all objects inside \p window.
  std::vector<datasets::SpatialObject> WindowQuery(const common::Rect& window);

  /// kNN query (Algorithm 2 / Section 3.4).
  std::vector<datasets::SpatialObject> KnnQuery(
      const common::Point& q, size_t k,
      KnnStrategy strategy = KnnStrategy::kConservative);

  const QueryStats& stats() const { return stats_; }

 private:
  // --- on-air reads -------------------------------------------------------
  /// Dozes to the next table at/after the session's current slot, reads it
  /// into table_ (skipping ahead frame by frame past link errors), learns
  /// its content. Returns false only if the watchdog expires.
  bool ReadNextTable();
  /// Dozes to the table of \p position and reads it into table_ (with loss
  /// recovery, which may land on a *different*, later table).
  bool ReadTableAt(uint32_t position);
  /// Reads all object buckets of the frame at \p position (whose table was
  /// just read, own min-HC \p own_hc); records retrieved objects and
  /// confirms coverage when complete.
  void ReadFrameObjects(uint32_t position, uint64_t own_hc);

  // --- knowledge ----------------------------------------------------------
  void Learn(const DsiTableView& table);
  uint64_t SegmentDomainLo(uint32_t seg) const;
  uint64_t SegmentDomainHiExcl(uint32_t seg) const;
  /// Largest known min-HC at offset <= off in segment (domain lo if none).
  uint64_t LowerBoundHc(uint32_t seg, uint32_t off) const;
  /// Smallest known min-HC at offset > off in segment (domain hi if none).
  uint64_t UpperBoundHcExcl(uint32_t seg, uint32_t off) const;
  /// Exact min-HC of the next frame in the segment, if known (domain hi
  /// when \p off is the segment's last frame).
  std::optional<uint64_t> NextFrameHcExcl(uint32_t seg, uint32_t off) const;

  // --- retrieved objects ---------------------------------------------------
  /// Ranks (= ids into index_.sorted_objects()) retrieved so far, sorted.
  /// Object payloads are never copied: the simulated read is paid through
  /// the session and the data comes from the server-side store.
  bool Retrieved(uint32_t rank) const;
  void MarkRetrieved(uint32_t rank);

  // --- relevance reasoning -------------------------------------------------
  bool RangesIntersect(const std::vector<hilbert::HcRange>& pending,
                       uint64_t lo, uint64_t hi_excl) const;
  /// May the frame at \p position hold objects in \p pending?
  bool FrameMayIntersect(uint32_t position,
                         const std::vector<hilbert::HcRange>& pending) const;
  /// May any frame at a position strictly inside the cyclic gap
  /// (\p from_pos, \p to_pos) hold objects in \p pending?
  bool GapMayIntersect(uint32_t from_pos, uint32_t to_pos,
                       const std::vector<hilbert::HcRange>& pending) const;

  // --- navigation ----------------------------------------------------------
  /// Farthest entry whose skipped gap provably misses \p pending.
  uint32_t SelectConservativeHop(
      const DsiTableView& table,
      const std::vector<hilbert::HcRange>& pending) const;
  /// Entry whose advertised frame is spatially closest to \p q among those
  /// not already covered; falls back to the conservative rule.
  uint32_t SelectAggressiveHop(const DsiTableView& table,
                               const std::vector<hilbert::HcRange>& pending,
                               const common::Point& q) const;

  /// Shared driver: runs the pending-targets loop until no targets remain.
  /// \p recompute_targets(out) is invoked after every learning step to
  /// produce the current target ranges into the scratch buffer (static for
  /// window queries, circle-derived for kNN); aggressive kNN passes
  /// \p spatial_goal. Templated so the per-iteration call inlines.
  template <class RecomputeTargets>
  void RunSearch(const RecomputeTargets& recompute_targets,
                 const common::Point* spatial_goal);

  bool WatchdogExpired() const;
  /// The session advanced past the generation this client's knowledge was
  /// learned from (dynamic broadcasts): checked after every failed read,
  /// since every stored slot number and HC bracket is then meaningless.
  bool SessionStale() const;

  const DsiIndex& index_;
  broadcast::ClientSession* session_;
  ReorgLayout layout_;
  uint64_t generation_ = 0;  // broadcast generation the knowledge refers to
  uint64_t hc_cells_;  // total number of HC values (domain size)

  // Learned knowledge: per segment, sorted (offset, min-HC) entries.
  std::vector<SegmentKnowledge> known_;
  // Broadcast positions whose table was already learned (table content is
  // deterministic per position, so re-reads skip the record pass).
  std::vector<bool> learned_tables_;
  // Frames whose objects are all retrieved and whose span is confirmed:
  // nothing left to learn there, so the multi-disk nearest-frame hop must
  // not revisit them (a hot done-frame with a still-loose upper HC bound
  // would otherwise win the wait race forever — the bound only tightens by
  // reading OTHER tables).
  std::vector<bool> frames_done_;
  bool heads_known_ = false;

  hilbert::IntervalSet covered_;
  std::vector<uint32_t> retrieved_ranks_;  // sorted object ranks
  QueryStats stats_;
  uint64_t deadline_packets_ = 0;

  // Scratch reused across the RunSearch loop (and across reads): the most
  // recently received table and the target/pending range buffers.
  DsiTableView table_;
  std::vector<hilbert::HcRange> targets_scratch_;
  std::vector<hilbert::HcRange> pending_scratch_;
};

}  // namespace dsi::core
