#pragma once

/// \file index.hpp
/// \brief Server-side construction of the Distributed Spatial Index (DSI):
/// frame formation, exponential index tables, broadcast(-reorganized)
/// program generation (Sections 3.1 and 3.5 of the paper).
///
/// Terminology:
///  * objects are sorted by Hilbert value and grouped into nF frames of
///    `object_factor` objects each; frame f's min-HC is HC'_f;
///  * the *broadcast position* p in [0, nF) is where a frame goes on air.
///    With m = 1 position == frame rank; with m-segment reorganization the
///    cycle interleaves the m equal segments (Figure 7);
///  * every frame carries an index table whose entry i points r^i positions
///    ahead and advertises that frame's min-HC.

#include <cstdint>
#include <vector>

#include "broadcast/program.hpp"
#include "common/sizes.hpp"
#include "datasets/datasets.hpp"
#include "hilbert/space_mapper.hpp"

namespace dsi::core {

/// Build-time configuration of a DSI broadcast.
struct DsiConfig {
  /// Exponential index base r; the paper fixes r = 2 in the evaluation.
  uint32_t index_base = 2;

  /// Objects per frame (no). 0 selects the paper's packet-size-driven
  /// derivation (one packet per table: nF = r^(entries that fit), see
  /// Section 4); the default 1 is the paper's running assumption and is
  /// what reproduces the reported magnitudes (see EXPERIMENTS.md).
  uint32_t object_factor = 1;

  /// Number of interleaved broadcast segments m; 1 = original HC-ascending
  /// order, 2 = the reorganized broadcast used in the evaluation.
  uint32_t num_segments = 1;

  /// Bytes used to serialize one HC value inside an index table. 0 (the
  /// default) packs the cell index (2*order bits, i.e. ceil(order/4)
  /// bytes), which keeps full-cycle tables near one packet. 16 reproduces
  /// Section 4's field accounting literally; note the paper's 16-byte HC
  /// values are incompatible with its own one-packet-per-table design for
  /// any realistic frame count (see EXPERIMENTS.md for the analysis).
  uint32_t table_hc_bytes = 0;
};

/// One index-table entry as decoded by a client: the advertised min-HC of
/// the pointed frame and its broadcast position (the on-air encoding is a
/// 2-byte forward offset; positions are the decoded equivalent).
struct DsiTableEntry {
  uint64_t hc_min = 0;
  uint32_t position = 0;  ///< Broadcast position of the pointed frame.
};

/// Everything a client decodes from one received index table.
struct DsiTableView {
  uint32_t position = 0;      ///< Broadcast position of the carrying frame.
  uint64_t own_hc_min = 0;    ///< Min-HC of the carrying frame.
  std::vector<DsiTableEntry> entries;  ///< Entry i points r^i ahead.
};

/// A built DSI broadcast: frames, tables, and the broadcast program.
class DsiIndex {
 public:
  /// Builds the index and program. \p objects need not be sorted; an empty
  /// set yields an empty (zero-cycle) program that RunWorkload guards —
  /// never construct a ClientSession over it. \p mapper defines the Hilbert
  /// mapping shared with clients.
  DsiIndex(std::vector<datasets::SpatialObject> objects,
           const hilbert::SpaceMapper& mapper, size_t packet_capacity,
           const DsiConfig& config);

  /// The paper-motivated incremental republication path: derives the next
  /// generation's index from \p prev by merging \p ops into its HC-sorted
  /// object sequence — O(n + u log u) with no re-sort, the fully
  /// distributed structure's cheap-update claim made executable. The result
  /// is structurally identical to a full rebuild from the updated object
  /// set (asserted by tests); DiffGenerations quantifies how much of the
  /// cycle actually changed.
  static DsiIndex Republish(const DsiIndex& prev,
                            const std::vector<datasets::UpdateOp>& ops);

  const DsiConfig& config() const { return config_; }
  const hilbert::SpaceMapper& mapper() const { return mapper_; }
  const broadcast::BroadcastProgram& program() const { return program_; }

  uint32_t num_frames() const { return num_frames_; }
  uint32_t object_factor() const { return object_factor_; }
  uint32_t entries_per_table() const { return entries_per_table_; }

  /// Objects in Hilbert broadcast order (rank order).
  const std::vector<datasets::SpatialObject>& sorted_objects() const {
    return objects_;
  }
  /// Hilbert value of the rank-th sorted object.
  uint64_t object_hc(size_t rank) const { return object_hcs_[rank]; }

  /// Frame rank (HC order) -> broadcast position, and back.
  uint32_t FrameRankToPosition(uint32_t rank) const;
  uint32_t PositionToFrameRank(uint32_t position) const;

  /// Min-HC of the frame at a broadcast position.
  uint64_t FrameMinHcAtPosition(uint32_t position) const;

  /// Min-HC values of the m segment head frames (broadcast positions
  /// 0..m-1); carried in every table so clients can resolve sub-channels.
  const std::vector<uint64_t>& segment_head_hcs() const {
    return segment_head_hcs_;
  }

  /// The index table carried by the frame at \p position, as a client
  /// decodes it. Cheap (assembled from precomputed layout).
  DsiTableView TableAt(uint32_t position) const;

  /// Assembles the table into \p out, reusing its entry storage (the
  /// client re-reads a table every hop; this keeps the hop allocation-free).
  void TableAt(uint32_t position, DsiTableView* out) const;

  /// Program slot of the table bucket of the frame at \p position.
  size_t TableSlot(uint32_t position) const;

  /// Program slots of the object buckets of the frame at \p position, in
  /// on-air order; paired with the rank of each carried object.
  struct FrameObjects {
    size_t first_slot = 0;
    uint32_t first_rank = 0;
    uint32_t count = 0;
  };
  FrameObjects ObjectsAt(uint32_t position) const;

  /// Serialized size of one index table in bytes.
  uint32_t table_bytes() const { return table_bytes_; }

  /// Bytes of one serialized HC value in tables (resolved from config).
  uint32_t table_hc_bytes() const { return table_hc_bytes_; }

 private:
  struct SortedTag {};
  /// Republish fast path: \p objects already HC-sorted (ties by id).
  DsiIndex(SortedTag, std::vector<datasets::SpatialObject> objects,
           const hilbert::SpaceMapper& mapper, size_t packet_capacity,
           const DsiConfig& config);
  /// Shared build: objects_/object_hcs_ sorted and filled.
  void BuildFromSorted(size_t packet_capacity);

  DsiConfig config_;
  const hilbert::SpaceMapper& mapper_;
  std::vector<datasets::SpatialObject> objects_;  // HC-sorted
  std::vector<uint64_t> object_hcs_;              // parallel to objects_
  uint32_t num_frames_ = 0;
  uint32_t object_factor_ = 1;
  uint32_t entries_per_table_ = 0;
  uint32_t segment_length_ = 0;  // frames per segment (last may be short)
  uint32_t table_bytes_ = 0;
  uint32_t table_hc_bytes_ = 0;
  std::vector<uint32_t> frame_first_rank_;  // frame rank -> first object rank
  std::vector<uint64_t> frame_min_hc_;      // by frame rank
  std::vector<uint32_t> rank_to_position_;
  std::vector<uint32_t> position_to_rank_;
  std::vector<uint64_t> segment_head_hcs_;
  std::vector<size_t> table_slot_;         // by position
  std::vector<size_t> first_object_slot_;  // by position
  broadcast::BroadcastProgram program_;
};

/// How much of the broadcast cycle a republication actually changed —
/// the server-side cost of an incremental update (only changed buckets
/// need re-serialization and cache invalidation) versus the full-rebuild
/// baseline that re-emits the whole cycle.
struct RepublishDelta {
  uint32_t frames_total = 0;    ///< Frames in the new generation.
  uint32_t frames_changed = 0;  ///< Frames with any changed bucket.
  uint64_t bytes_changed = 0;   ///< table_bytes_changed + data_bytes_changed.
  uint64_t bytes_total = 0;     ///< Full cycle bytes of the new generation.
  uint64_t table_bytes_changed = 0;  ///< Re-stamped index tables.
  uint64_t data_bytes_changed = 0;   ///< Re-serialized object payloads.
};

/// Quantifies a republication. Data buckets are compared by CONTENT — a
/// serialized object payload is identical whenever the same (id, location)
/// existed in the previous generation, so the server reuses it no matter
/// where the layout shift moved it; only inserted and moved objects cost
/// new data bytes. Index tables are compared positionally (decoded content
/// plus the segment-head preamble): they encode the layout itself, so rank
/// shifts genuinely re-stamp them — the structural price of the
/// exponential tables that this delta makes visible.
RepublishDelta DiffGenerations(const DsiIndex& prev, const DsiIndex& next);

}  // namespace dsi::core
