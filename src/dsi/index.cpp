#include "dsi/index.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "dsi/layout.hpp"

namespace dsi::core {

DsiIndex::DsiIndex(std::vector<datasets::SpatialObject> objects,
                   const hilbert::SpaceMapper& mapper, size_t packet_capacity,
                   const DsiConfig& config)
    : config_(config),
      mapper_(mapper),
      objects_(std::move(objects)),
      program_(packet_capacity) {
  assert(config_.index_base >= 2);
  // Sort objects by Hilbert value (ties broken by id for determinism).
  std::sort(objects_.begin(), objects_.end(),
            [&](const datasets::SpatialObject& a,
                const datasets::SpatialObject& b) {
              const uint64_t ha = mapper_.PointToIndex(a.location);
              const uint64_t hb = mapper_.PointToIndex(b.location);
              return ha != hb ? ha < hb : a.id < b.id;
            });
  object_hcs_.resize(objects_.size());
  for (size_t i = 0; i < objects_.size(); ++i) {
    object_hcs_[i] = mapper_.PointToIndex(objects_[i].location);
  }
  BuildFromSorted(packet_capacity);
}

DsiIndex::DsiIndex(SortedTag, std::vector<datasets::SpatialObject> objects,
                   const hilbert::SpaceMapper& mapper, size_t packet_capacity,
                   const DsiConfig& config)
    : config_(config),
      mapper_(mapper),
      objects_(std::move(objects)),
      program_(packet_capacity) {
  object_hcs_.resize(objects_.size());
  for (size_t i = 0; i < objects_.size(); ++i) {
    object_hcs_[i] = mapper_.PointToIndex(objects_[i].location);
    assert(i == 0 || object_hcs_[i - 1] < object_hcs_[i] ||
           (object_hcs_[i - 1] == object_hcs_[i] &&
            objects_[i - 1].id < objects_[i].id));
  }
  BuildFromSorted(packet_capacity);
}

DsiIndex DsiIndex::Republish(const DsiIndex& prev,
                             const std::vector<datasets::UpdateOp>& ops) {
  // Replay the stream against the previous generation's HC-sorted sequence:
  // each base object is either untouched (keeps its slot in the sorted
  // order), deleted, or displaced (moved — its Hilbert key changes); fresh
  // and displaced objects are sorted among themselves and merged back in.
  // One linear merge instead of a full re-sort: the incremental
  // republication cost the paper's distributed structure was built for.
  enum class State : uint8_t { kKeep, kDrop, kDisplaced };
  const std::vector<datasets::SpatialObject>& base = prev.sorted_objects();
  std::unordered_map<uint32_t, size_t> base_rank;
  base_rank.reserve(base.size());
  for (size_t i = 0; i < base.size(); ++i) base_rank.emplace(base[i].id, i);

  std::vector<State> state(base.size(), State::kKeep);
  // Fresh-id objects live here until a later op deletes or moves them.
  std::vector<datasets::SpatialObject> fresh;
  auto find_fresh = [&](uint32_t id) {
    for (size_t i = 0; i < fresh.size(); ++i) {
      if (fresh[i].id == id) return i;
    }
    return fresh.size();
  };
  std::vector<common::Point> displaced_loc(base.size());
  for (const datasets::UpdateOp& op : ops) {
    switch (op.kind) {
      case datasets::UpdateKind::kInsert:
        fresh.push_back(datasets::SpatialObject{op.id, op.location});
        break;
      case datasets::UpdateKind::kDelete: {
        if (auto it = base_rank.find(op.id); it != base_rank.end()) {
          state[it->second] = State::kDrop;
        } else if (const size_t i = find_fresh(op.id); i < fresh.size()) {
          fresh.erase(fresh.begin() + static_cast<ptrdiff_t>(i));
        }
        break;
      }
      case datasets::UpdateKind::kMove: {
        if (auto it = base_rank.find(op.id); it != base_rank.end()) {
          state[it->second] = State::kDisplaced;
          displaced_loc[it->second] = op.location;
        } else if (const size_t i = find_fresh(op.id); i < fresh.size()) {
          fresh[i].location = op.location;
        }
        break;
      }
    }
  }

  // Changed objects (fresh + displaced), sorted by the rebuild's order.
  const hilbert::SpaceMapper& mapper = prev.mapper();
  std::vector<datasets::SpatialObject> changed = std::move(fresh);
  for (size_t i = 0; i < base.size(); ++i) {
    if (state[i] == State::kDisplaced) {
      changed.push_back(datasets::SpatialObject{base[i].id, displaced_loc[i]});
    }
  }
  auto hc_id_less = [&](const datasets::SpatialObject& a,
                        const datasets::SpatialObject& b) {
    const uint64_t ha = mapper.PointToIndex(a.location);
    const uint64_t hb = mapper.PointToIndex(b.location);
    return ha != hb ? ha < hb : a.id < b.id;
  };
  std::sort(changed.begin(), changed.end(), hc_id_less);

  std::vector<datasets::SpatialObject> merged;
  merged.reserve(base.size() + changed.size());
  size_t ci = 0;
  for (size_t i = 0; i < base.size(); ++i) {
    if (state[i] != State::kKeep) continue;
    while (ci < changed.size() && hc_id_less(changed[ci], base[i])) {
      merged.push_back(changed[ci++]);
    }
    merged.push_back(base[i]);
  }
  while (ci < changed.size()) merged.push_back(changed[ci++]);

  return DsiIndex(SortedTag{}, std::move(merged), mapper,
                  prev.program().packet_capacity(), prev.config());
}

void DsiIndex::BuildFromSorted(size_t packet_capacity) {
  assert(config_.index_base >= 2);
  const auto n = static_cast<uint32_t>(objects_.size());

  // Serialized HC width in tables: packed cell index by default (2*order
  // bits), or an explicit override (16 = the paper's literal field size).
  table_hc_bytes_ =
      config_.table_hc_bytes != 0
          ? config_.table_hc_bytes
          : std::max<uint32_t>(
                1, (static_cast<uint32_t>(mapper_.curve().order()) + 3) / 4);
  const uint32_t entry_bytes = table_hc_bytes_ + common::kPointerBytes;

  // Object factor. object_factor == 0 selects the paper's packet-driven
  // derivation (one packet per table => nF = r^(entries that fit)).
  if (config_.object_factor == 0) {
    const auto cap = static_cast<uint32_t>(packet_capacity);
    const uint32_t usable = cap > table_hc_bytes_ ? cap - table_hc_bytes_ : 0;
    const uint32_t fit = std::max<uint32_t>(1, usable / entry_bytes);
    uint64_t frames = 1;
    for (uint32_t i = 0; i < fit && frames < n; ++i) {
      frames *= config_.index_base;
    }
    object_factor_ = static_cast<uint32_t>(
        n == 0 ? 1 : (n + frames - 1) / frames);
  } else {
    object_factor_ = config_.object_factor;
  }

  // Frame formation: nominal object_factor objects per frame, but a run of
  // equal HC values is never split across frames. This keeps frame min-HCs
  // strictly increasing, which clients rely on to confirm coverage of HC
  // ranges (see client.cpp). An empty object set forms zero frames and an
  // empty program (nothing to put on air).
  frame_first_rank_.clear();
  {
    uint32_t start = 0;
    while (start < n) {
      frame_first_rank_.push_back(start);
      uint32_t end = std::min(n, start + object_factor_);
      while (end < n && object_hcs_[end] == object_hcs_[end - 1]) ++end;
      start = end;
    }
    frame_first_rank_.push_back(n);
  }
  num_frames_ = static_cast<uint32_t>(frame_first_rank_.size() - 1);

  frame_min_hc_.resize(num_frames_);
  for (uint32_t f = 0; f < num_frames_; ++f) {
    frame_min_hc_[f] = object_hcs_[frame_first_rank_[f]];
    assert(f == 0 || frame_min_hc_[f] > frame_min_hc_[f - 1]);
  }

  // Entries per table: all i with r^i < nF (full-cycle exponential cover).
  entries_per_table_ = 0;
  for (uint64_t reach = 1; reach < num_frames_;
       reach *= config_.index_base) {
    ++entries_per_table_;
  }

  // Broadcast reorganization (Section 3.5): round-robin interleave of m
  // balanced segments of the HC-sorted frame sequence. ReorgLayout is the
  // structural single source of truth shared with clients.
  const ReorgLayout layout(num_frames_, config_.num_segments);
  const uint32_t m = layout.m;
  segment_length_ = layout.base + (layout.extra != 0 ? 1 : 0);
  rank_to_position_.assign(num_frames_, 0);
  position_to_rank_.assign(num_frames_, 0);
  for (uint32_t rank = 0; rank < num_frames_; ++rank) {
    const uint32_t pos = layout.RankToPosition(rank);
    rank_to_position_[rank] = pos;
    position_to_rank_[pos] = rank;
  }

  segment_head_hcs_.clear();
  segment_head_hcs_.reserve(m);
  if (num_frames_ > 0) {
    for (uint32_t s = 0; s < m; ++s) {
      segment_head_hcs_.push_back(frame_min_hc_[layout.SegmentStartRank(s)]);
    }
  }

  // Table byte size: own min-HC + (for reorganized broadcasts) the m
  // segment-head HC values + the exponential entries.
  table_bytes_ = table_hc_bytes_ + (m > 1 ? m * table_hc_bytes_ : 0) +
                 entries_per_table_ * entry_bytes;

  // Emit the program: per position, one table bucket then the frame's
  // object buckets.
  table_slot_.resize(num_frames_);
  first_object_slot_.resize(num_frames_);
  for (uint32_t pos = 0; pos < num_frames_; ++pos) {
    const uint32_t rank = position_to_rank_[pos];
    table_slot_[pos] = program_.AddBucket(
        broadcast::BucketKind::kDsiFrameTable, pos, table_bytes_);
    first_object_slot_[pos] = program_.num_buckets();
    for (uint32_t i = frame_first_rank_[rank]; i < frame_first_rank_[rank + 1];
         ++i) {
      program_.AddBucket(broadcast::BucketKind::kDataObject, i,
                         common::kDataObjectBytes);
    }
  }
  program_.Finalize();
}

uint32_t DsiIndex::FrameRankToPosition(uint32_t rank) const {
  assert(rank < num_frames_);
  return rank_to_position_[rank];
}

uint32_t DsiIndex::PositionToFrameRank(uint32_t position) const {
  assert(position < num_frames_);
  return position_to_rank_[position];
}

uint64_t DsiIndex::FrameMinHcAtPosition(uint32_t position) const {
  return frame_min_hc_[PositionToFrameRank(position)];
}

DsiTableView DsiIndex::TableAt(uint32_t position) const {
  DsiTableView view;
  TableAt(position, &view);
  return view;
}

void DsiIndex::TableAt(uint32_t position, DsiTableView* out) const {
  assert(position < num_frames_);
  out->position = position;
  out->own_hc_min = FrameMinHcAtPosition(position);
  out->entries.clear();
  out->entries.reserve(entries_per_table_);
  uint64_t reach = 1;
  for (uint32_t i = 0; i < entries_per_table_; ++i) {
    const uint32_t target = static_cast<uint32_t>(
        (position + reach) % num_frames_);
    out->entries.push_back(DsiTableEntry{FrameMinHcAtPosition(target),
                                         target});
    reach *= config_.index_base;
  }
}

size_t DsiIndex::TableSlot(uint32_t position) const {
  assert(position < num_frames_);
  return table_slot_[position];
}

DsiIndex::FrameObjects DsiIndex::ObjectsAt(uint32_t position) const {
  assert(position < num_frames_);
  const uint32_t rank = position_to_rank_[position];
  FrameObjects fo;
  fo.first_slot = first_object_slot_[position];
  fo.first_rank = frame_first_rank_[rank];
  fo.count = frame_first_rank_[rank + 1] - frame_first_rank_[rank];
  return fo;
}

RepublishDelta DiffGenerations(const DsiIndex& prev, const DsiIndex& next) {
  RepublishDelta d;
  d.frames_total = next.num_frames();
  d.bytes_total = next.program().cycle_bytes();
  const uint64_t capacity = next.program().packet_capacity();
  // Segment heads ride every table (m > 1): a head change re-stamps them all.
  const bool heads_same = prev.segment_head_hcs() == next.segment_head_hcs();

  // Data payloads are content-addressed: the serialized bucket of an
  // unchanged (id, location) object is byte-identical wherever the layout
  // shift moved it. Both generations are HC-sorted with id tiebreaks, so
  // one sorted walk pairs survivors.
  std::unordered_map<uint32_t, common::Point> prev_loc;
  prev_loc.reserve(prev.sorted_objects().size());
  for (const datasets::SpatialObject& o : prev.sorted_objects()) {
    prev_loc.emplace(o.id, o.location);
  }

  DsiTableView prev_table;
  DsiTableView next_table;
  for (uint32_t pos = 0; pos < next.num_frames(); ++pos) {
    const bool have_prev = pos < prev.num_frames();
    bool frame_changed = false;

    bool table_same = have_prev && heads_same;
    if (table_same) {
      prev.TableAt(pos, &prev_table);
      next.TableAt(pos, &next_table);
      table_same = prev_table.own_hc_min == next_table.own_hc_min &&
                   prev_table.entries.size() == next_table.entries.size();
      for (size_t i = 0; table_same && i < next_table.entries.size(); ++i) {
        table_same = prev_table.entries[i].hc_min ==
                         next_table.entries[i].hc_min &&
                     prev_table.entries[i].position ==
                         next_table.entries[i].position;
      }
    }
    if (!table_same) {
      frame_changed = true;
      d.table_bytes_changed +=
          next.program().bucket(next.TableSlot(pos)).packets * capacity;
    }

    const DsiIndex::FrameObjects nf = next.ObjectsAt(pos);
    for (uint32_t i = 0; i < nf.count; ++i) {
      const datasets::SpatialObject& no =
          next.sorted_objects()[nf.first_rank + i];
      const auto it = prev_loc.find(no.id);
      const bool same = it != prev_loc.end() &&
                        it->second.x == no.location.x &&
                        it->second.y == no.location.y;
      if (!same) {
        frame_changed = true;
        d.data_bytes_changed +=
            next.program().bucket(nf.first_slot + i).packets * capacity;
      }
    }
    if (frame_changed) ++d.frames_changed;
  }
  d.bytes_changed = d.table_bytes_changed + d.data_bytes_changed;
  return d;
}

}  // namespace dsi::core
