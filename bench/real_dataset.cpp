/// Reproduces the paper's REAL-dataset results, which are summarized in its
/// text rather than plotted (window: DSI needs 59.7% of R-tree and 50.5% of
/// HCI latency; 75.2% / 41.5% of their tuning). Uses the REAL substitute
/// (5848 clustered points, DESIGN.md §5). Window (ratio 0.1) and 10NN at
/// 64-byte packets, plus the DSI/R-tree and DSI/HCI ratios.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsi;
  bench::Options opt = bench::ParseOptions(argc, argv);
  opt.real = true;
  const auto objects = bench::MakeDataset(opt);
  const hilbert::SpaceMapper mapper(datasets::UnitUniverse(),
                                    bench::OrderFor(opt));
  constexpr size_t kCapacity = 64;
  const auto windows = sim::MakeWindowWorkload(
      opt.queries, 0.1, datasets::UnitUniverse(), opt.seed + 1);
  const auto points =
      sim::MakeKnnWorkload(opt.queries, datasets::UnitUniverse(), opt.seed + 2);

  const core::DsiIndex dsi(objects, mapper, kCapacity,
                           bench::DsiReorganized());
  const rtree::RtreeIndex rt(objects, kCapacity);
  const hci::HciIndex hci(objects, mapper, kCapacity);

  std::cout << "REAL dataset (substitute, " << objects.size()
            << " clustered points, capacity=64B, " << opt.queries
            << " queries/point)\n\n";

  const auto win = sim::Workload::Window(windows);
  const auto knn = sim::Workload::Knn(points, 10);
  const auto wopt = bench::Par(opt.seed + 3);
  const auto kopt = bench::Par(opt.seed + 4);
  const auto dw = sim::RunWorkload(air::DsiHandle(dsi), win, wopt);
  const auto rw = sim::RunWorkload(air::RtreeHandle(rt), win, wopt);
  const auto hw = sim::RunWorkload(air::HciHandle(hci), win, wopt);
  const auto dk = sim::RunWorkload(air::DsiHandle(dsi), knn, kopt);
  const auto rk = sim::RunWorkload(air::RtreeHandle(rt), knn, kopt);
  const auto hk = sim::RunWorkload(air::HciHandle(hci), knn, kopt);

  std::cout << "Absolute metrics, bytes x10^3:\n";
  sim::TablePrinter t({"Query", "Lat(DSI)", "Lat(Rtree)", "Lat(HCI)",
                       "Tun(DSI)", "Tun(Rtree)", "Tun(HCI)"});
  t.PrintHeader();
  t.PrintRow("Window", dw.latency_bytes / 1e3, rw.latency_bytes / 1e3,
             hw.latency_bytes / 1e3, dw.tuning_bytes / 1e3,
             rw.tuning_bytes / 1e3, hw.tuning_bytes / 1e3);
  t.PrintRow("10NN", dk.latency_bytes / 1e3, rk.latency_bytes / 1e3,
             hk.latency_bytes / 1e3, dk.tuning_bytes / 1e3,
             rk.tuning_bytes / 1e3, hk.tuning_bytes / 1e3);

  std::cout << "\nDSI as % of baseline (paper, window: 59.7% of R-tree / "
               "50.5% of HCI latency; 75.2% / 41.5% tuning):\n";
  sim::TablePrinter p({"Query", "Lat/Rtree%", "Lat/HCI%", "Tun/Rtree%",
                       "Tun/HCI%"});
  p.PrintHeader();
  p.PrintRow("Window", dw.latency_bytes / rw.latency_bytes * 100.0,
             dw.latency_bytes / hw.latency_bytes * 100.0,
             dw.tuning_bytes / rw.tuning_bytes * 100.0,
             dw.tuning_bytes / hw.tuning_bytes * 100.0);
  p.PrintRow("10NN", dk.latency_bytes / rk.latency_bytes * 100.0,
             dk.latency_bytes / hk.latency_bytes * 100.0,
             dk.tuning_bytes / rk.tuning_bytes * 100.0,
             dk.tuning_bytes / hk.tuning_bytes * 100.0);
  return 0;
}
