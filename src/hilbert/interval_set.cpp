#include "hilbert/interval_set.hpp"

#include <algorithm>
#include <cassert>

namespace dsi::hilbert {

void IntervalSet::Add(const HcRange& r) {
  assert(r.lo <= r.hi);
  // Find insertion window: all ranges overlapping or adjacent to r.
  auto first = std::lower_bound(
      ranges_.begin(), ranges_.end(), r,
      [](const HcRange& a, const HcRange& b) {
        // a entirely before b with a gap (not adjacent).
        return a.hi != UINT64_MAX && a.hi + 1 < b.lo;
      });
  auto last = std::upper_bound(
      first, ranges_.end(), r, [](const HcRange& a, const HcRange& b) {
        return a.hi != UINT64_MAX && a.hi + 1 < b.lo;
      });
  HcRange merged = r;
  if (first != last) {
    merged.lo = std::min(merged.lo, first->lo);
    merged.hi = std::max(merged.hi, std::prev(last)->hi);
  }
  auto pos = ranges_.erase(first, last);
  ranges_.insert(pos, merged);
}

bool IntervalSet::Intersects(const HcRange& r) const {
  // First range with hi >= r.lo; it intersects iff its lo <= r.hi.
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), r.lo,
      [](const HcRange& a, uint64_t v) { return a.hi < v; });
  return it != ranges_.end() && it->lo <= r.hi;
}

bool IntervalSet::Covers(const HcRange& r) const {
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), r.lo,
      [](const HcRange& a, uint64_t v) { return a.hi < v; });
  return it != ranges_.end() && it->lo <= r.lo && r.hi <= it->hi;
}

std::vector<HcRange> IntervalSet::Subtract(
    const std::vector<HcRange>& targets) const {
  std::vector<HcRange> out;
  for (const HcRange& t : targets) {
    uint64_t cur = t.lo;
    auto it = std::lower_bound(
        ranges_.begin(), ranges_.end(), t.lo,
        [](const HcRange& a, uint64_t v) { return a.hi < v; });
    bool open = true;
    while (it != ranges_.end() && it->lo <= t.hi) {
      if (it->lo > cur) out.push_back(HcRange{cur, it->lo - 1});
      if (it->hi >= t.hi) {
        open = false;
        break;
      }
      cur = it->hi + 1;
      ++it;
    }
    if (open && cur <= t.hi) out.push_back(HcRange{cur, t.hi});
  }
  return NormalizeRanges(std::move(out));
}

}  // namespace dsi::hilbert
