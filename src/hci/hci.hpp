#pragma once

/// \file hci.hpp
/// \brief The Hilbert Curve Index (HCI) baseline [18]: data objects are
/// broadcast in ascending Hilbert order and indexed by a B+-tree over HC
/// values, interleaved on air with the distributed indexing scheme [9].
///
/// Window queries decompose the window into HC ranges and run range scans
/// over the tree; kNN queries first collect k curve-neighbour candidates
/// around the query point's HC value to bound a search circle, then run a
/// window query over the circle (the two-phase algorithm of [18]). The
/// second phase usually wraps into the next broadcast cycle — the latency
/// weakness the paper's Figure 11 exposes.

#include <cstdint>
#include <utility>
#include <vector>

#include "bptree/bptree.hpp"
#include "broadcast/air_tree.hpp"
#include "broadcast/client.hpp"
#include "common/geometry.hpp"
#include "datasets/datasets.hpp"
#include "hilbert/space_mapper.hpp"

namespace dsi::hci {

/// Per-query diagnostics.
struct HciQueryStats {
  uint64_t nodes_read = 0;
  uint64_t objects_read = 0;
  uint64_t buckets_lost = 0;
  bool completed = true;
  /// Broadcast republished mid-query (dynamic broadcasts): the node cache
  /// and leaf anchors referred to the dead layout; partial results returned.
  bool stale = false;
};

/// Server-side HCI broadcast: HC-sorted objects + B+-tree + air layout.
class HciIndex {
 public:
  HciIndex(std::vector<datasets::SpatialObject> objects,
           const hilbert::SpaceMapper& mapper, size_t packet_capacity,
           uint32_t target_subtrees = 16,
           broadcast::TreeLayout layout = broadcast::TreeLayout::kDistributed);

  const hilbert::SpaceMapper& mapper() const { return mapper_; }
  const bptree::BptTree& tree() const { return tree_; }
  const broadcast::AirTreeBroadcast& air() const { return air_; }
  const broadcast::BroadcastProgram& program() const {
    return air_.program();
  }

  /// Objects in broadcast (HC) order; data id == rank in this vector.
  const std::vector<datasets::SpatialObject>& sorted_objects() const {
    return objects_;
  }
  uint64_t object_hc(size_t rank) const { return tree_.key(rank); }

 private:
  const hilbert::SpaceMapper& mapper_;
  std::vector<datasets::SpatialObject> objects_;
  bptree::BptTree tree_;
  broadcast::AirTreeBroadcast air_;
};

/// Query execution against an HCI broadcast: one query, or — kept alive on
/// the same session — a stream of them. The node cache, leaf anchors and
/// retrieved flags describe the broadcast content, so they survive across
/// queries within one generation; call BeginQuery() before every
/// re-evaluation, and rebuild the client on the new generation's index
/// when session->generation() advances (the caches refer to a dead layout
/// then).
class HciClient {
 public:
  HciClient(const HciIndex& index, broadcast::ClientSession* session);

  /// Arms the next query of a continuous client: clears the per-query
  /// flags and the previous query's half-resolved data list, and re-arms
  /// the watchdog from the session's current instant. The node cache, leaf
  /// anchors and retrieved objects are kept.
  void BeginQuery();

  std::vector<datasets::SpatialObject> WindowQuery(const common::Rect& window);
  std::vector<datasets::SpatialObject> KnnQuery(const common::Point& q,
                                                size_t k);

  const HciQueryStats& stats() const { return stats_; }

 private:
  /// Reads node \p node_id at its next occurrence, retrying later
  /// occurrences on link errors. False only if the watchdog expires.
  bool ReadNode(uint32_t node_id);
  /// One listen attempt for data bucket \p data_id at its next occurrence;
  /// false on a link error (the bucket stays pending — callers sweep,
  /// never block).
  bool TryReadData(uint32_t data_id);
  /// Reads every pending data bucket that passes by before the next
  /// occurrence of \p before_node (a real client drains what it already
  /// knows it needs instead of letting it fly by).
  void FlushPassingData(uint32_t before_node);
  /// Retrieves all objects whose HC value lies in \p targets (ascending
  /// range scan; objects land in retrieved_).
  void RetrieveRanges(const std::vector<hilbert::HcRange>& targets);

  bool WatchdogExpired() const;

  const HciIndex& index_;
  broadcast::ClientSession* session_;
  uint64_t generation_ = 0;  ///< Generation the caches/anchors refer to.
  /// Index nodes already downloaded this query: a client keeps them in
  /// memory, so revisiting one is free (re-reading it off the air would
  /// cost a whole extra cycle).
  std::vector<bool> node_cache_;
  /// Cached leaves by their first key (sorted flat vector), so a later
  /// range that lands in an already-downloaded leaf skips the descent
  /// entirely.
  std::vector<std::pair<uint64_t, uint32_t>> cached_leaf_by_front_;
  std::vector<uint32_t> pending_data_;  // data ids to retrieve
  /// Retrieved flags by data id; payloads are never copied — the simulated
  /// read is paid via the session and the data lives in the index.
  std::vector<uint8_t> retrieved_;
  HciQueryStats stats_;
  uint64_t deadline_packets_ = 0;
};

}  // namespace dsi::hci
