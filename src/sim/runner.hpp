#pragma once

/// \file runner.hpp
/// \brief Experiment runner: executes query workloads against a broadcast
/// index with uniformly random tune-in instants and averages the two paper
/// metrics (access latency and tuning time, in bytes).
///
/// Every Run* function is deterministic for a given seed; each query gets a
/// fresh client session (one query = one mobile client tuning in).

#include <cstdint>
#include <vector>

#include "common/geometry.hpp"
#include "dsi/client.hpp"
#include "dsi/index.hpp"
#include "hci/hci.hpp"
#include "rtree/rtree_air.hpp"

namespace dsi::sim {

/// Averaged byte metrics over a workload.
struct AvgMetrics {
  double latency_bytes = 0.0;
  double tuning_bytes = 0.0;
  size_t queries = 0;
  size_t incomplete = 0;  ///< Watchdog-aborted queries (extreme loss only).

  /// Relative deterioration of this run versus a lossless baseline, in
  /// percent (Table 1's quantity).
  static double DeteriorationPct(double lossy, double clean) {
    return clean == 0.0 ? 0.0 : (lossy - clean) / clean * 100.0;
  }
};

AvgMetrics RunDsiWindow(const core::DsiIndex& index,
                        const std::vector<common::Rect>& windows,
                        double theta, uint64_t seed,
    broadcast::ErrorMode mode = broadcast::ErrorMode::kPerReadLoss);

AvgMetrics RunDsiKnn(const core::DsiIndex& index,
                     const std::vector<common::Point>& points, size_t k,
                     core::KnnStrategy strategy, double theta, uint64_t seed,
    broadcast::ErrorMode mode = broadcast::ErrorMode::kPerReadLoss);

AvgMetrics RunRtreeWindow(const rtree::RtreeIndex& index,
                          const std::vector<common::Rect>& windows,
                          double theta, uint64_t seed,
    broadcast::ErrorMode mode = broadcast::ErrorMode::kPerReadLoss);

AvgMetrics RunRtreeKnn(const rtree::RtreeIndex& index,
                       const std::vector<common::Point>& points, size_t k,
                       double theta, uint64_t seed,
    broadcast::ErrorMode mode = broadcast::ErrorMode::kPerReadLoss);

AvgMetrics RunHciWindow(const hci::HciIndex& index,
                        const std::vector<common::Rect>& windows,
                        double theta, uint64_t seed,
    broadcast::ErrorMode mode = broadcast::ErrorMode::kPerReadLoss);

AvgMetrics RunHciKnn(const hci::HciIndex& index,
                     const std::vector<common::Point>& points, size_t k,
                     double theta, uint64_t seed,
    broadcast::ErrorMode mode = broadcast::ErrorMode::kPerReadLoss);

}  // namespace dsi::sim
