#pragma once

/// \file layout.hpp
/// \brief Structural description of the (possibly reorganized) DSI broadcast
/// schedule: the pure function of (num_frames, num_segments) that maps frame
/// ranks (HC order) to broadcast positions and back.
///
/// This mapping carries no data knowledge — both the server (to lay out the
/// cycle) and the clients (to reason about which broadcast positions belong
/// to which segment) may use it. What clients must *learn from the air* is
/// which HC values live at which positions; that is never exposed here.

#include <cassert>
#include <cstdint>

namespace dsi::core {

/// Round-robin interleave of m balanced segments (Section 3.5, Figure 7).
/// Segment s owns frame ranks [start(s), start(s+1)); the first
/// (num_frames mod m) segments have one extra frame. Broadcast positions
/// cycle through segments: offset o of segment s airs at position o*m + s
/// while all segments are live, and the tail offsets of the longer
/// segments air last.
struct ReorgLayout {
  uint32_t num_frames = 0;
  uint32_t m = 1;      ///< Number of segments (>= 1, <= num_frames).
  uint32_t base = 0;   ///< num_frames / m.
  uint32_t extra = 0;  ///< num_frames % m (segments with one extra frame).

  /// frames == 0 (an empty broadcast) degenerates to a single empty
  /// segment, so clients of empty programs can still be constructed.
  ReorgLayout(uint32_t frames, uint32_t segments)
      : num_frames(frames),
        m(segments == 0 || frames == 0
              ? 1
              : (segments > frames ? frames : segments)),
        base(frames / m),
        extra(frames % m) {}

  /// Frames in segment s.
  uint32_t SegmentLength(uint32_t s) const {
    assert(s < m);
    return base + (s < extra ? 1 : 0);
  }

  /// First frame rank of segment s (and num_frames for s == m).
  uint32_t SegmentStartRank(uint32_t s) const {
    assert(s <= m);
    return s * base + (s < extra ? s : extra);
  }

  uint32_t SegmentOfRank(uint32_t rank) const {
    assert(rank < num_frames);
    // Invert SegmentStartRank: ranks below extra*(base+1) are in the longer
    // segments.
    const uint32_t long_span = extra * (base + 1);
    if (rank < long_span) return rank / (base + 1);
    return base == 0 ? m - 1 : extra + (rank - long_span) / base;
  }

  uint32_t OffsetOfRank(uint32_t rank) const {
    return rank - SegmentStartRank(SegmentOfRank(rank));
  }

  /// Broadcast position of (segment, offset).
  uint32_t PositionOf(uint32_t s, uint32_t offset) const {
    assert(s < m && offset < SegmentLength(s));
    if (offset < base) return offset * m + s;
    return base * m + s;  // tail round: only segments with the extra frame
  }

  uint32_t RankToPosition(uint32_t rank) const {
    const uint32_t s = SegmentOfRank(rank);
    return PositionOf(s, rank - SegmentStartRank(s));
  }

  uint32_t SegmentOfPosition(uint32_t pos) const {
    assert(pos < num_frames);
    const uint64_t full = static_cast<uint64_t>(base) * m;
    return pos < full ? pos % m : static_cast<uint32_t>(pos - full);
  }

  uint32_t OffsetOfPosition(uint32_t pos) const {
    assert(pos < num_frames);
    const uint64_t full = static_cast<uint64_t>(base) * m;
    return pos < full ? pos / m : base;
  }

  uint32_t PositionToRank(uint32_t pos) const {
    const uint32_t s = SegmentOfPosition(pos);
    return SegmentStartRank(s) + OffsetOfPosition(pos);
  }
};

}  // namespace dsi::core
