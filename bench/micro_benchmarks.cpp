/// Google-benchmark micro benchmarks for the building blocks: Hilbert
/// conversions, window decomposition, interval bookkeeping, index build and
/// on-air query processing.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "datasets/datasets.hpp"
#include "dsi/client.hpp"
#include "dsi/index.hpp"
#include "hilbert/interval_set.hpp"
#include "hilbert/space_mapper.hpp"

namespace {

using namespace dsi;

void BM_HilbertCellToIndex(benchmark::State& state) {
  const hilbert::HilbertCurve curve(static_cast<int>(state.range(0)));
  common::Rng rng(1);
  const auto x = static_cast<uint32_t>(
      rng.UniformInt(0, static_cast<int64_t>(curve.side()) - 1));
  const auto y = static_cast<uint32_t>(
      rng.UniformInt(0, static_cast<int64_t>(curve.side()) - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.CellToIndex(x, y));
  }
}
BENCHMARK(BM_HilbertCellToIndex)->Arg(8)->Arg(16)->Arg(24);

// The pre-LUT one-bit-per-step loop, for the speedup to be individually
// visible next to BM_HilbertCellToIndex.
void BM_HilbertCellToIndexReference(benchmark::State& state) {
  const hilbert::HilbertCurve curve(static_cast<int>(state.range(0)));
  common::Rng rng(1);
  const auto x = static_cast<uint32_t>(
      rng.UniformInt(0, static_cast<int64_t>(curve.side()) - 1));
  const auto y = static_cast<uint32_t>(
      rng.UniformInt(0, static_cast<int64_t>(curve.side()) - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.CellToIndexReference(x, y));
  }
}
BENCHMARK(BM_HilbertCellToIndexReference)->Arg(8)->Arg(16)->Arg(24);

void BM_HilbertIndexToCell(benchmark::State& state) {
  const hilbert::HilbertCurve curve(static_cast<int>(state.range(0)));
  common::Rng rng(2);
  const auto d = static_cast<uint64_t>(
      rng.UniformInt(0, static_cast<int64_t>(curve.num_cells()) - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.IndexToCell(d));
  }
}
BENCHMARK(BM_HilbertIndexToCell)->Arg(8)->Arg(16)->Arg(24);

void BM_HilbertIndexToCellReference(benchmark::State& state) {
  const hilbert::HilbertCurve curve(static_cast<int>(state.range(0)));
  common::Rng rng(2);
  const auto d = static_cast<uint64_t>(
      rng.UniformInt(0, static_cast<int64_t>(curve.num_cells()) - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.IndexToCellReference(d));
  }
}
BENCHMARK(BM_HilbertIndexToCellReference)->Arg(8)->Arg(16)->Arg(24);

void BM_WindowToRanges(benchmark::State& state) {
  const hilbert::SpaceMapper mapper(datasets::UnitUniverse(),
                                    static_cast<int>(state.range(0)));
  const common::Rect w{0.4, 0.4, 0.5, 0.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.WindowToRanges(w));
  }
}
BENCHMARK(BM_WindowToRanges)->Arg(8)->Arg(10)->Arg(12);

void BM_CircleToRanges(benchmark::State& state) {
  const hilbert::SpaceMapper mapper(datasets::UnitUniverse(),
                                    static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mapper.CircleToRanges(common::Point{0.45, 0.45}, 0.05));
  }
}
BENCHMARK(BM_CircleToRanges)->Arg(8)->Arg(10)->Arg(12);

// Buffer-reuse variants of the decompositions: the kNN loop shape, where
// the same output vector absorbs every re-decomposition.
void BM_WindowToRangesInto(benchmark::State& state) {
  const hilbert::SpaceMapper mapper(datasets::UnitUniverse(),
                                    static_cast<int>(state.range(0)));
  const common::Rect w{0.4, 0.4, 0.5, 0.5};
  std::vector<hilbert::HcRange> out;
  for (auto _ : state) {
    mapper.WindowToRanges(w, &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_WindowToRangesInto)->Arg(8)->Arg(10)->Arg(12);

void BM_CircleToRangesInto(benchmark::State& state) {
  const hilbert::SpaceMapper mapper(datasets::UnitUniverse(),
                                    static_cast<int>(state.range(0)));
  std::vector<hilbert::HcRange> out;
  for (auto _ : state) {
    mapper.CircleToRanges(common::Point{0.45, 0.45}, 0.05, &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_CircleToRangesInto)->Arg(8)->Arg(10)->Arg(12);

void BM_IntervalSetAdd(benchmark::State& state) {
  common::Rng rng(3);
  std::vector<hilbert::HcRange> ranges;
  for (int i = 0; i < 1000; ++i) {
    const auto lo = static_cast<uint64_t>(rng.UniformInt(0, 1 << 20));
    ranges.push_back({lo, lo + static_cast<uint64_t>(rng.UniformInt(0, 64))});
  }
  for (auto _ : state) {
    hilbert::IntervalSet set;
    for (const auto& r : ranges) set.Add(r);
    benchmark::DoNotOptimize(set.ranges().size());
  }
}
BENCHMARK(BM_IntervalSetAdd);

void BM_DsiIndexBuild(benchmark::State& state) {
  const auto objects = datasets::MakeUniform(
      static_cast<size_t>(state.range(0)), datasets::UnitUniverse(), 4);
  const hilbert::SpaceMapper mapper(
      datasets::UnitUniverse(),
      hilbert::ChooseOrder(static_cast<size_t>(state.range(0))));
  core::DsiConfig cfg;
  cfg.num_segments = 2;
  for (auto _ : state) {
    const core::DsiIndex index(objects, mapper, 64, cfg);
    benchmark::DoNotOptimize(index.num_frames());
  }
}
BENCHMARK(BM_DsiIndexBuild)->Arg(1000)->Arg(10000);

void BM_DsiPointQuery(benchmark::State& state) {
  const auto objects =
      datasets::MakeUniform(10000, datasets::UnitUniverse(), 5);
  const hilbert::SpaceMapper mapper(datasets::UnitUniverse(),
                                    hilbert::ChooseOrder(10000));
  core::DsiConfig cfg;
  cfg.num_segments = 2;
  const core::DsiIndex index(objects, mapper, 64, cfg);
  common::Rng rng(6);
  for (auto _ : state) {
    const auto& target = index.sorted_objects()[static_cast<size_t>(
        rng.UniformInt(0, 9999))];
    broadcast::ClientSession session(
        index.program(),
        static_cast<uint64_t>(
            rng.UniformInt(0, static_cast<int64_t>(
                                  index.program().cycle_packets()) -
                                  1)),
        broadcast::ErrorModel{}, rng.Fork());
    core::DsiClient client(index, &session);
    benchmark::DoNotOptimize(client.PointQuery(target.location));
  }
}
BENCHMARK(BM_DsiPointQuery);

void BM_DsiWindowQuery(benchmark::State& state) {
  const auto objects =
      datasets::MakeUniform(10000, datasets::UnitUniverse(), 5);
  const hilbert::SpaceMapper mapper(datasets::UnitUniverse(),
                                    hilbert::ChooseOrder(10000));
  core::DsiConfig cfg;
  cfg.num_segments = 2;
  const core::DsiIndex index(objects, mapper, 64, cfg);
  common::Rng rng(7);
  for (auto _ : state) {
    const common::Point c{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    const common::Rect w =
        common::MakeClippedWindow(c, 0.1, datasets::UnitUniverse());
    broadcast::ClientSession session(
        index.program(),
        static_cast<uint64_t>(
            rng.UniformInt(0, static_cast<int64_t>(
                                  index.program().cycle_packets()) -
                                  1)),
        broadcast::ErrorModel{}, rng.Fork());
    core::DsiClient client(index, &session);
    benchmark::DoNotOptimize(client.WindowQuery(w));
  }
}
BENCHMARK(BM_DsiWindowQuery);

}  // namespace

BENCHMARK_MAIN();
