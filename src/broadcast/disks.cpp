#include "broadcast/disks.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <numeric>

namespace dsi::broadcast {

namespace {

BroadcastProgram CopyProgram(const BroadcastProgram& flat) {
  BroadcastProgram out(flat.packet_capacity());
  for (size_t s = 0; s < flat.num_buckets(); ++s) {
    const Bucket& b = flat.bucket(s);
    out.AddBucket(b.kind, b.payload, b.size_bytes);
  }
  out.Finalize();
  return out;
}

}  // namespace

BroadcastProgram MakeMultiDiskProgram(const BroadcastProgram& flat,
                                      uint32_t num_disks,
                                      const std::vector<double>& weights) {
  assert(!flat.coded());
  assert(weights.size() == flat.num_buckets());
  const size_t n = flat.num_buckets();
  const uint32_t k = std::min<uint32_t>(
      {num_disks, 3, static_cast<uint32_t>(std::max<size_t>(n, 1))});
  if (k <= 1 || n == 0) return CopyProgram(flat);

  // Rank slots hottest first; ties keep broadcast order so the layout is
  // deterministic and weight-degenerate inputs stay in cycle order.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return weights[a] > weights[b];
  });

  // Disk d (0 = hottest) holds the share 2^d / (2^k - 1) of the cycle's
  // AIRTIME and airs f_d = 2^(k-1-d) times per major cycle, split into 2^d
  // chunks. Shares are measured in packets, not slot counts: buckets vary
  // wildly in size (an index table is a fraction of a data object), and
  // airtime is what the repetition multiplies.
  const uint32_t denom = (1u << k) - 1;
  std::vector<uint64_t> prefix(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + flat.bucket(order[i]).packets;
  }
  std::vector<size_t> boundary(k + 1);
  boundary[k] = n;
  for (uint32_t d = 0; d < k; ++d) {
    const uint64_t target = prefix[n] * ((1u << d) - 1) / denom;
    boundary[d] = static_cast<size_t>(
        std::lower_bound(prefix.begin(), prefix.end(), target) -
        prefix.begin());
    if (d > 0) boundary[d] = std::max(boundary[d], boundary[d - 1]);
  }

  // Weight only decides each slot's DISK; within a disk, slots go back to
  // broadcast order. Index descents and frame sweeps are pipelined
  // dependency chains (node before subtree, table before objects) that
  // clients read front to back — a weight-permuted disk would charge a
  // doze per hop and forfeit the frequency win the tiers just bought.
  for (uint32_t d = 0; d < k; ++d) {
    std::sort(order.begin() + static_cast<ptrdiff_t>(boundary[d]),
              order.begin() + static_cast<ptrdiff_t>(boundary[d + 1]));
  }

  BroadcastProgram out(flat.packet_capacity());
  std::vector<uint32_t> slot_of_phys;
  std::vector<std::vector<uint32_t>> airings(n);
  const uint32_t minors = 1u << (k - 1);
  for (uint32_t minor = 0; minor < minors; ++minor) {
    for (uint32_t d = 0; d < k; ++d) {
      const size_t n_d = boundary[d + 1] - boundary[d];
      const uint32_t chunks = 1u << d;
      const uint32_t chunk = minor % chunks;
      const size_t lo = boundary[d] + n_d * chunk / chunks;
      const size_t hi = boundary[d] + n_d * (chunk + 1) / chunks;
      for (size_t i = lo; i < hi; ++i) {
        const uint32_t slot = order[i];
        const Bucket& b = flat.bucket(slot);
        const size_t phys = out.AddBucket(b.kind, b.payload, b.size_bytes);
        slot_of_phys.push_back(slot);
        airings[slot].push_back(static_cast<uint32_t>(phys));
      }
    }
  }
  out.SetDiskSchedule(k, std::move(slot_of_phys), std::move(airings));
  out.Finalize();
  return out;
}

}  // namespace dsi::broadcast
