#pragma once

/// \file socket.hpp
/// \brief Minimal POSIX socket plumbing for the live broadcast pair:
/// endpoint parsing ("tcp:PORT", "tcp:HOST:PORT", "unix:PATH"), RAII fds,
/// listen/accept/connect, and length-exact send/recv with deadlines.
/// Everything above this file speaks frames (wire/framing.hpp); everything
/// below is errno.

#include <cstdint>
#include <string>
#include <vector>

namespace dsi::transport {

/// A parsed listen/connect endpoint.
struct Endpoint {
  enum class Kind { kTcp, kUnix } kind = Kind::kTcp;
  std::string host = "127.0.0.1";  ///< TCP only; listeners bind it too.
  uint16_t port = 0;               ///< TCP only; 0 = ephemeral (listen).
  std::string path;                ///< Unix only.
};

/// Parses "tcp:PORT", "tcp:HOST:PORT" or "unix:PATH". Returns false (with
/// \p error set) on anything else.
bool ParseEndpoint(const std::string& spec, Endpoint* out, std::string* error);

/// Owning socket fd. Move-only; closes on destruction.
class SocketFd {
 public:
  SocketFd() = default;
  explicit SocketFd(int fd) : fd_(fd) {}
  SocketFd(SocketFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  SocketFd& operator=(SocketFd&& other) noexcept;
  SocketFd(const SocketFd&) = delete;
  SocketFd& operator=(const SocketFd&) = delete;
  ~SocketFd() { Close(); }

  bool valid() const { return fd_ >= 0; }
  int get() const { return fd_; }
  void Close();

 private:
  int fd_ = -1;
};

/// Binds + listens on \p ep. For TCP with port 0 the kernel picks a port
/// and \p ep->port is updated to it; for Unix any stale path is unlinked
/// first. Invalid SocketFd (with \p error set) on failure.
SocketFd ListenOn(Endpoint* ep, std::string* error);

/// Accepts one connection; blocks up to \p timeout_ms (<= 0 = forever).
/// Invalid on timeout/error/shutdown of the listener.
SocketFd AcceptOn(const SocketFd& listener, int timeout_ms);

/// Connects to \p ep with a deadline. Invalid SocketFd + \p error on
/// refusal or timeout.
SocketFd ConnectTo(const Endpoint& ep, int timeout_ms, std::string* error);

/// Sends exactly \p size bytes (retrying short writes). False on any error.
bool SendAll(const SocketFd& fd, const uint8_t* data, size_t size);

/// Receives exactly \p size bytes within \p timeout_ms per chunk. False on
/// EOF, timeout or error (\p error says which).
bool RecvAll(const SocketFd& fd, uint8_t* data, size_t size, int timeout_ms,
             std::string* error);

}  // namespace dsi::transport
