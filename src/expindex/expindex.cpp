#include "expindex/expindex.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dsi::expindex {

namespace {

constexpr uint64_t kWatchdogCycles = 200;

}  // namespace

ExpIndex::ExpIndex(std::vector<uint64_t> keys, size_t packet_capacity,
                   const ExpConfig& config)
    : config_(config), keys_(std::move(keys)), program_(packet_capacity) {
  // An empty key set builds an empty (zero-cycle) program; RunWorkload
  // guards it — never construct a ClientSession over it.
  assert(config_.index_base >= 2);
  assert(config_.chunk_size >= 1);
  std::sort(keys_.begin(), keys_.end());
  const auto n = static_cast<uint32_t>(keys_.size());

  // Chunk formation: nominal chunk_size keys, never splitting equal-key
  // runs (same tie discipline as DSI frames; keeps chunk minima strictly
  // increasing so containment reasoning is exact).
  uint32_t start = 0;
  while (start < n) {
    chunk_first_.push_back(start);
    uint32_t end = std::min(n, start + config_.chunk_size);
    while (end < n && keys_[end] == keys_[end - 1]) ++end;
    start = end;
  }
  chunk_first_.push_back(n);
  num_chunks_ = static_cast<uint32_t>(chunk_first_.size() - 1);

  entries_per_table_ = 0;
  for (uint64_t reach = 1; reach < num_chunks_;
       reach *= config_.index_base) {
    ++entries_per_table_;
  }
  table_bytes_ =
      config_.key_bytes +
      entries_per_table_ * (config_.key_bytes + common::kPointerBytes);

  table_slot_.resize(num_chunks_);
  first_item_slot_.resize(num_chunks_);
  for (uint32_t pos = 0; pos < num_chunks_; ++pos) {
    table_slot_[pos] = program_.AddBucket(
        broadcast::BucketKind::kDsiFrameTable, pos, table_bytes_);
    first_item_slot_[pos] = program_.num_buckets();
    for (uint32_t i = chunk_first_[pos]; i < chunk_first_[pos + 1]; ++i) {
      program_.AddBucket(broadcast::BucketKind::kDataObject, i,
                         config_.item_bytes);
    }
  }
  program_.Finalize();
}

uint64_t ExpIndex::ChunkMinKey(uint32_t position) const {
  assert(position < num_chunks_);
  return keys_[chunk_first_[position]];
}

std::vector<ExpTableEntry> ExpIndex::TableAt(uint32_t position) const {
  std::vector<ExpTableEntry> entries;
  entries.reserve(entries_per_table_);
  uint64_t reach = 1;
  for (uint32_t i = 0; i < entries_per_table_; ++i) {
    const auto target =
        static_cast<uint32_t>((position + reach) % num_chunks_);
    entries.push_back(ExpTableEntry{ChunkMinKey(target), target});
    reach *= config_.index_base;
  }
  return entries;
}

ExpIndex::ChunkItems ExpIndex::ItemsAt(uint32_t position) const {
  assert(position < num_chunks_);
  ChunkItems ci;
  ci.first_slot = first_item_slot_[position];
  ci.first_rank = chunk_first_[position];
  ci.count = chunk_first_[position + 1] - chunk_first_[position];
  return ci;
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

ExpClient::ExpClient(const ExpIndex& index, broadcast::ClientSession* session,
                     bool reuse_knowledge)
    : index_(index), session_(session), reuse_(reuse_knowledge) {
  session_->InitialProbe();
  generation_ = session_->generation();
  if (reuse_) {
    table_known_.assign(index_.num_chunks(), 0);
    key_known_.assign(index_.sorted_keys().size(), 0);
  }
}

bool ExpClient::WatchdogExpired() const {
  return session_->now_packets() >= deadline_packets_;
}

bool ExpClient::SessionStale() const {
  return session_->generation() != generation_;
}

std::optional<uint32_t> ExpClient::ReadNextTable() {
  const auto& program = index_.program();
  const size_t nb = program.num_buckets();
  while (!WatchdogExpired()) {
    size_t slot;
    if (session_->program().multi_disk()) {
      // Logical slot order no longer tracks airing order: take the chunk
      // table airing soonest — the literal "next table the radio hears" —
      // instead of the logically next one, which may be tiers away.
      uint64_t best_wait = UINT64_MAX;
      slot = 0;
      for (uint32_t c = 0; c < index_.num_chunks(); ++c) {
        const size_t s = index_.TableSlot(c);
        const uint64_t w = session_->PacketsUntil(s);
        if (w < best_wait) {
          best_wait = w;
          slot = s;
        }
      }
    } else {
      slot = session_->current_slot();
      size_t guard = 0;
      while (program.bucket(slot).kind !=
             broadcast::BucketKind::kDsiFrameTable) {
        slot = (slot + 1) % nb;
        if (++guard > nb) return std::nullopt;
      }
    }
    const uint32_t pos = program.bucket(slot).payload;
    // A continuous client that already holds this table reasons over it in
    // memory — no listen, no doze.
    if (reuse_ && table_known_[pos] != 0) return pos;
    if (session_->ReadBucket(slot)) {
      ++stats_.tables_read;
      if (reuse_) table_known_[pos] = 1;
      return pos;
    }
    if (SessionStale()) {
      stats_.stale = true;
      return std::nullopt;
    }
    ++stats_.buckets_lost;
  }
  return std::nullopt;
}

std::optional<uint32_t> ExpClient::Forward(uint32_t from, uint64_t key) {
  // Cyclic key arithmetic: rel(x) = x - anchor (unsigned wraparound) gives
  // the forward distance along the sorted-and-wrapped key axis.
  uint32_t pos = from;
  while (!WatchdogExpired()) {
    const uint64_t cur_min = index_.ChunkMinKey(pos);
    const auto entries = index_.TableAt(pos);
    if (entries.empty()) return pos;  // single-chunk broadcast
    const uint64_t rel_key = key - cur_min;
    // Containment: key before the next chunk's minimum.
    if (rel_key < entries.front().min_key - cur_min) return pos;
    // Farthest entry that does not overshoot. On a multi-disk cycle the
    // two farthest qualifying entries compete on airing wait: the runner-up
    // sits at half the leader's exponential distance, so taking it still
    // cuts the remaining distance geometrically (the chain stays
    // logarithmic), and it often airs a whole tier sooner than a leader
    // that would cost a cross-tier doze.
    uint32_t next = entries.front().position;
    size_t farthest = 0;
    for (size_t i = entries.size(); i-- > 0;) {
      if (entries[i].min_key - cur_min <= rel_key) {
        farthest = i;
        next = entries[i].position;
        break;
      }
    }
    if (session_->program().multi_disk() && farthest > 0) {
      const uint32_t runner_up = entries[farthest - 1].position;
      if (session_->PacketsUntil(index_.TableSlot(runner_up)) <
          session_->PacketsUntil(index_.TableSlot(next))) {
        next = runner_up;
      }
    }
    // Hop: read the chosen chunk's table (loss recovery may land later;
    // that is fine — forwarding re-evaluates from wherever it lands). A
    // remembered table makes the hop instantaneous.
    if (reuse_ && table_known_[next] != 0) {
      pos = next;
      continue;
    }
    if (session_->ReadBucket(index_.TableSlot(next))) {
      ++stats_.tables_read;
      if (reuse_) table_known_[next] = 1;
      pos = next;
    } else {
      if (SessionStale()) {
        stats_.stale = true;
        return std::nullopt;
      }
      ++stats_.buckets_lost;
      const auto recovered = ReadNextTable();
      if (!recovered) return std::nullopt;
      pos = *recovered;
    }
  }
  return std::nullopt;
}

std::vector<uint32_t> ExpClient::Lookup(uint64_t key) {
  auto out = RangeQuery(key, key);
  return out;
}

std::vector<uint32_t> ExpClient::RangeQuery(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  // Each 1-D query gets a fresh watchdog budget. Spatial adapters issue
  // many range scans per spatial query; time legitimately spent on earlier
  // scans must not starve a later one into a phantom abort (the watchdog
  // exists to bound a *stuck* scan, not to cap useful work).
  deadline_packets_ = session_->now_packets() +
                      kWatchdogCycles * session_->program().cycle_packets();
  std::vector<uint32_t> out;
  const auto first_table = ReadNextTable();
  if (!first_table) {
    stats_.completed = false;
    return out;
  }
  const auto start = Forward(*first_table, lo);
  if (!start) {
    stats_.completed = false;
    return out;
  }

  // Sequential scan: read chunks while they can contain keys in [lo, hi].
  // One listen attempt per bucket as it streams by; losses are deferred to
  // a sweep after the walk (blocking mid-scan would waste a full cycle per
  // lost bucket and, under heavy loss, turn bounded work into a watchdog
  // abort). The walk itself is bounded by one lap of the cycle.
  uint32_t pos = *start;
  bool have_table = true;  // Forward() received the start chunk's table
  uint32_t visited = 0;
  std::vector<std::pair<size_t, uint32_t>> missing;  // (slot, rank)
  while (visited < index_.num_chunks()) {
    ++visited;
    // Retrieve this chunk's items — all of them: only the chunk minimum is
    // known before listening, the item keys come with the payloads — then
    // filter by key.
    const auto items = index_.ItemsAt(pos);
    for (uint32_t i = 0; i < items.count; ++i) {
      const uint32_t rank = items.first_rank + i;
      // A continuous client already holding this item's key filters it in
      // memory; the radio stays off until the next unknown bucket.
      if (reuse_ && key_known_[rank] != 0) {
        const uint64_t key = index_.sorted_keys()[rank];
        if (key >= lo && key <= hi) out.push_back(rank);
        continue;
      }
      if (session_->ReadBucket(items.first_slot + i)) {
        ++stats_.items_read;
        if (reuse_) key_known_[rank] = 1;
        const uint64_t key = index_.sorted_keys()[rank];
        if (key >= lo && key <= hi) out.push_back(rank);
      } else {
        if (SessionStale()) {
          stats_.stale = true;
          stats_.completed = false;
          return out;  // partial: the layout the scan walked is gone
        }
        ++stats_.buckets_lost;
        missing.emplace_back(items.first_slot + i, rank);
      }
    }
    // Stop check needs this chunk's table (entry 0 = the next chunk's
    // minimum). When the table was lost the scan keeps going — the next
    // chunk is structurally known, its items are filtered by key anyway,
    // and the next received table restores the check.
    if (have_table) {
      const auto entries = index_.TableAt(pos);
      if (entries.empty()) break;  // single-chunk broadcast
      if (entries.front().min_key - lo > hi - lo) break;  // cyclic: past hi
    }
    if (visited == index_.num_chunks()) break;  // full lap: nothing ahead
    const uint32_t next =
        static_cast<uint32_t>((pos + 1) % index_.num_chunks());
    if (reuse_ && table_known_[next] != 0) {
      have_table = true;
      pos = next;
      continue;
    }
    if (session_->ReadBucket(index_.TableSlot(next))) {
      ++stats_.tables_read;
      if (reuse_) table_known_[next] = 1;
      have_table = true;
    } else {
      if (SessionStale()) {
        stats_.stale = true;
        stats_.completed = false;
        return out;
      }
      ++stats_.buckets_lost;
      have_table = false;
    }
    pos = next;
  }
  // Sweep the lost items in passing order until none remain; every lap of
  // the cycle retries all of them.
  while (!missing.empty()) {
    if (WatchdogExpired() || stats_.stale) {
      stats_.completed = false;
      return out;
    }
    uint64_t best_wait = UINT64_MAX;
    size_t best_i = 0;
    for (size_t i = 0; i < missing.size(); ++i) {
      const uint64_t w = session_->PacketsUntil(missing[i].first);
      if (w < best_wait) {
        best_wait = w;
        best_i = i;
      }
    }
    if (session_->ReadBucket(missing[best_i].first)) {
      ++stats_.items_read;
      const uint32_t rank = missing[best_i].second;
      if (reuse_) key_known_[rank] = 1;
      const uint64_t key = index_.sorted_keys()[rank];
      if (key >= lo && key <= hi) out.push_back(rank);
      missing.erase(missing.begin() + static_cast<ptrdiff_t>(best_i));
    } else {
      if (SessionStale()) {
        stats_.stale = true;
        stats_.completed = false;
        return out;
      }
      ++stats_.buckets_lost;
    }
  }
  return out;
}

}  // namespace dsi::expindex
