/// broadcastd — the live broadcast daemon.
///
/// Cycles one index family's broadcast program over a real socket on a
/// real timer: any number of clients (tools/live_client or a
/// transport::StreamTransport embedded elsewhere) connect, receive the
/// build recipe + timetable, and then the bucket stream from their tune-in
/// instant, generation republications and coded-parity interleaves
/// included. SIGINT/SIGTERM trigger a clean final-cycle shutdown: every
/// connection finishes its current cycle, receives a kShutdown frame at
/// the boundary, and the daemon exits 0.
///
/// Usage: broadcastd --listen=tcp:PORT|unix:PATH
///                   [--family=dsi|rtree|hci|expindex] [--n=N] [--seed=S]
///                   [--capacity=B] [--order=O] [--m=M]
///                   [--generations=G] [--updates=U] [--gen-cycles=C]
///                   [--code-group=GRP] [--code-parity=P]
///                   [--pps=PACKETS_PER_SECOND]   (0 = unthrottled)
///
/// Prints the bound endpoint ("listening on tcp:PORT") once serving, so
/// scripts can wait for readiness on stdout.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "transport/broadcast_daemon.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleStop(int) { g_stop = 1; }

bool ParseFamily(const std::string& name, dsi::wire::FamilyId* out) {
  if (name == "dsi") *out = dsi::wire::FamilyId::kDsi;
  else if (name == "rtree") *out = dsi::wire::FamilyId::kRtree;
  else if (name == "hci") *out = dsi::wire::FamilyId::kHci;
  else if (name == "expindex") *out = dsi::wire::FamilyId::kExpIndex;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsi;
  wire::HelloPayload recipe;
  recipe.seed = 42;
  recipe.num_objects = 500;
  std::string listen;
  double pps = 0.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--listen=", 0) == 0) {
      listen = arg.substr(9);
    } else if (arg.rfind("--family=", 0) == 0) {
      if (!ParseFamily(arg.substr(9), &recipe.family)) {
        std::fprintf(stderr, "unknown family: %s\n", arg.c_str());
        return 1;
      }
    } else if (arg.rfind("--n=", 0) == 0) {
      recipe.num_objects = static_cast<uint32_t>(std::stoul(arg.substr(4)));
    } else if (arg.rfind("--seed=", 0) == 0) {
      recipe.seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--capacity=", 0) == 0) {
      recipe.packet_capacity = static_cast<uint32_t>(std::stoul(arg.substr(11)));
    } else if (arg.rfind("--order=", 0) == 0) {
      recipe.hilbert_order = static_cast<uint32_t>(std::stoul(arg.substr(8)));
    } else if (arg.rfind("--m=", 0) == 0) {
      recipe.num_segments = static_cast<uint32_t>(std::stoul(arg.substr(4)));
    } else if (arg.rfind("--generations=", 0) == 0) {
      recipe.num_generations = static_cast<uint32_t>(std::stoul(arg.substr(14)));
    } else if (arg.rfind("--updates=", 0) == 0) {
      recipe.updates_per_gen = static_cast<uint32_t>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--gen-cycles=", 0) == 0) {
      recipe.gen_cycles = std::stoull(arg.substr(13));
    } else if (arg.rfind("--code-group=", 0) == 0) {
      recipe.coding_group = static_cast<uint32_t>(std::stoul(arg.substr(13)));
    } else if (arg.rfind("--code-parity=", 0) == 0) {
      recipe.coding_parity = static_cast<uint32_t>(std::stoul(arg.substr(14)));
    } else if (arg.rfind("--pps=", 0) == 0) {
      pps = std::stod(arg.substr(6));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 1;
    }
  }
  if (listen.empty()) {
    std::fprintf(stderr,
                 "broadcastd: --listen=tcp:PORT or --listen=unix:PATH is "
                 "required\n");
    return 1;
  }

  transport::BroadcastDaemon daemon(recipe, pps);
  std::string error;
  if (!daemon.Listen(listen, &error)) {
    std::fprintf(stderr, "broadcastd: %s\n", error.c_str());
    return 1;
  }

  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleStop);
  daemon.Start();

  const transport::Endpoint& ep = daemon.endpoint();
  if (ep.kind == transport::Endpoint::Kind::kTcp) {
    std::printf("listening on tcp:%u\n", static_cast<unsigned>(ep.port));
  } else {
    std::printf("listening on unix:%s\n", ep.path.c_str());
  }
  std::printf("family=%u n=%u seed=%llu generations=%u coding=%u+%u pps=%g\n",
              static_cast<unsigned>(recipe.family), recipe.num_objects,
              static_cast<unsigned long long>(recipe.seed),
              recipe.num_generations, recipe.coding_group,
              recipe.coding_parity, pps);
  std::fflush(stdout);

  // Serve until a stop signal; pause() returns on any signal delivery.
  while (g_stop == 0) {
    ::pause();
  }
  std::printf("broadcastd: stop signal — finishing the current cycle\n");
  std::fflush(stdout);
  daemon.Stop();
  return 0;
}
