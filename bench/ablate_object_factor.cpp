/// Ablation (DESIGN.md §6): DSI object factor no (objects per frame),
/// including the paper's packet-size-driven derivation (no = 0 config).
/// Coarser frames mean fewer index tables (shorter cycle) but force clients
/// to download whole frames to check membership (more tuning).

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsi;
  const bench::Options opt = bench::ParseOptions(argc, argv);
  const auto objects = bench::MakeDataset(opt);
  const hilbert::SpaceMapper mapper(datasets::UnitUniverse(),
                                    bench::OrderFor(opt));
  const auto windows = sim::MakeWindowWorkload(
      opt.queries, 0.1, datasets::UnitUniverse(), opt.seed + 1);
  const auto points =
      sim::MakeKnnWorkload(opt.queries, datasets::UnitUniverse(), opt.seed + 2);

  std::cout << "Ablation: DSI object factor no (capacity=64B, "
            << objects.size() << " objects; no=0 is the paper's "
            << "one-packet-table derivation)\n\n";
  std::cout << "Latency and tuning in bytes x10^3:\n";
  sim::TablePrinter t({"no", "Frames", "Lat(Win)", "Tun(Win)", "Lat(10NN)",
                       "Tun(10NN)"});
  t.PrintHeader();
  const auto win_workload = sim::Workload::Window(windows);
  const auto knn_workload = sim::Workload::Knn(points, 10);
  for (const uint32_t no : {1u, 2u, 4u, 16u, 64u, 0u}) {
    core::DsiConfig cfg = bench::DsiReorganized();
    cfg.object_factor = no;
    const core::DsiIndex index(objects, mapper, 64, cfg);
    const auto mw = sim::RunWorkload(air::DsiHandle(index), win_workload,
                                     bench::Par(opt.seed + 3));
    const auto mk = sim::RunWorkload(air::DsiHandle(index), knn_workload,
                                     bench::Par(opt.seed + 4));
    t.PrintRow(no == 0 ? std::string("paper") : std::to_string(no),
               index.num_frames(), mw.latency_bytes / 1e3,
               mw.tuning_bytes / 1e3, mk.latency_bytes / 1e3,
               mk.tuning_bytes / 1e3);
  }
  std::cout << "\nExpected: tuning grows sharply with no (whole-frame "
               "downloads); latency shrinks slightly (fewer tables on air). "
               "no = 1 is the configuration whose magnitudes match the "
               "paper's figures (see EXPERIMENTS.md).\n";
  return 0;
}
