/// The tree baselines must answer queries exactly under every air layout
/// ((1,m) and distributed, several replication parameters) and several
/// packet capacities — layouts change costs, never results.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "datasets/datasets.hpp"
#include "hci/hci.hpp"
#include "hilbert/space_mapper.hpp"
#include "rtree/rtree_air.hpp"

namespace dsi {
namespace {

using common::Point;
using common::Rect;
using datasets::SpatialObject;

std::set<uint32_t> Ids(const std::vector<SpatialObject>& objs) {
  std::set<uint32_t> ids;
  for (const auto& o : objs) ids.insert(o.id);
  return ids;
}

struct LayoutCase {
  broadcast::TreeLayout layout;
  uint32_t param;
  size_t capacity;
};

class BaselineLayoutTest : public ::testing::TestWithParam<LayoutCase> {};

TEST_P(BaselineLayoutTest, RtreeWindowExact) {
  const auto [layout, param, capacity] = GetParam();
  const auto objects = datasets::MakeUniform(250, datasets::UnitUniverse(), 91);
  const rtree::RtreeIndex index(objects, capacity, param, layout);
  common::Rng rng(17);
  for (int trial = 0; trial < 4; ++trial) {
    const Point c{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    const Rect w = common::MakeClippedWindow(c, 0.2,
                                             datasets::UnitUniverse());
    std::set<uint32_t> oracle;
    for (const auto& o : objects) {
      if (w.Contains(o.location)) oracle.insert(o.id);
    }
    broadcast::ClientSession s(
        index.program(), static_cast<uint64_t>(rng.UniformInt(0, 1 << 26)),
        broadcast::ErrorModel{}, common::Rng(trial + 1));
    rtree::RtreeClient client(index, &s);
    EXPECT_EQ(Ids(client.WindowQuery(w)), oracle);
    EXPECT_TRUE(client.stats().completed);
  }
}

TEST_P(BaselineLayoutTest, RtreeKnnExact) {
  const auto [layout, param, capacity] = GetParam();
  const auto objects = datasets::MakeUniform(250, datasets::UnitUniverse(), 92);
  const rtree::RtreeIndex index(objects, capacity, param, layout);
  common::Rng rng(19);
  for (int trial = 0; trial < 3; ++trial) {
    const Point q{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    std::vector<double> oracle;
    for (const auto& o : objects) {
      oracle.push_back(common::Distance(q, o.location));
    }
    std::sort(oracle.begin(), oracle.end());
    broadcast::ClientSession s(
        index.program(), static_cast<uint64_t>(rng.UniformInt(0, 1 << 26)),
        broadcast::ErrorModel{}, common::Rng(trial + 1));
    rtree::RtreeClient client(index, &s);
    const auto result = client.KnnQuery(q, 6);
    ASSERT_EQ(result.size(), 6u);
    std::vector<double> got;
    for (const auto& o : result) got.push_back(common::Distance(q, o.location));
    std::sort(got.begin(), got.end());
    for (size_t i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(got[i], oracle[i]);
  }
}

TEST_P(BaselineLayoutTest, HciWindowExact) {
  const auto [layout, param, capacity] = GetParam();
  const hilbert::SpaceMapper mapper(datasets::UnitUniverse(), 8);
  const auto objects = datasets::MakeUniform(250, datasets::UnitUniverse(), 93);
  const hci::HciIndex index(objects, mapper, capacity, param, layout);
  common::Rng rng(23);
  for (int trial = 0; trial < 4; ++trial) {
    const Point c{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    const Rect w = common::MakeClippedWindow(c, 0.2,
                                             datasets::UnitUniverse());
    std::set<uint32_t> oracle;
    for (const auto& o : objects) {
      if (w.Contains(o.location)) oracle.insert(o.id);
    }
    broadcast::ClientSession s(
        index.program(), static_cast<uint64_t>(rng.UniformInt(0, 1 << 26)),
        broadcast::ErrorModel{}, common::Rng(trial + 1));
    hci::HciClient client(index, &s);
    EXPECT_EQ(Ids(client.WindowQuery(w)), oracle);
    EXPECT_TRUE(client.stats().completed);
  }
}

TEST_P(BaselineLayoutTest, HciKnnExact) {
  const auto [layout, param, capacity] = GetParam();
  const hilbert::SpaceMapper mapper(datasets::UnitUniverse(), 8);
  const auto objects = datasets::MakeUniform(250, datasets::UnitUniverse(), 94);
  const hci::HciIndex index(objects, mapper, capacity, param, layout);
  common::Rng rng(29);
  for (int trial = 0; trial < 3; ++trial) {
    const Point q{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    std::vector<double> oracle;
    for (const auto& o : objects) {
      oracle.push_back(common::Distance(q, o.location));
    }
    std::sort(oracle.begin(), oracle.end());
    broadcast::ClientSession s(
        index.program(), static_cast<uint64_t>(rng.UniformInt(0, 1 << 26)),
        broadcast::ErrorModel{}, common::Rng(trial + 1));
    hci::HciClient client(index, &s);
    const auto result = client.KnnQuery(q, 6);
    ASSERT_EQ(result.size(), 6u);
    std::vector<double> got;
    for (const auto& o : result) got.push_back(common::Distance(q, o.location));
    std::sort(got.begin(), got.end());
    for (size_t i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(got[i], oracle[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, BaselineLayoutTest,
    ::testing::Values(
        LayoutCase{broadcast::TreeLayout::kDistributed, 1, 64},
        LayoutCase{broadcast::TreeLayout::kDistributed, 8, 64},
        LayoutCase{broadcast::TreeLayout::kDistributed, 16, 128},
        LayoutCase{broadcast::TreeLayout::kDistributed, 64, 256},
        LayoutCase{broadcast::TreeLayout::kOneM, 1, 64},
        LayoutCase{broadcast::TreeLayout::kOneM, 3, 64},
        LayoutCase{broadcast::TreeLayout::kOneM, 8, 512}));

}  // namespace
}  // namespace dsi
