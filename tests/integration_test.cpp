/// Integration tests: the three indexes answer the same workloads on the
/// same dataset, and the paper's qualitative performance relationships hold
/// on a laptop-sized instance.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "air/dsi_handle.hpp"
#include "air/hci_handle.hpp"
#include "air/rtree_handle.hpp"
#include "datasets/datasets.hpp"
#include "dsi/client.hpp"
#include "hci/hci.hpp"
#include "hilbert/space_mapper.hpp"
#include "rtree/rtree_air.hpp"
#include "sim/runner.hpp"
#include "sim/workload.hpp"

namespace dsi {
namespace {

using common::Point;
using common::Rect;
using datasets::SpatialObject;

std::set<uint32_t> Ids(const std::vector<SpatialObject>& objs) {
  std::set<uint32_t> ids;
  for (const auto& o : objs) ids.insert(o.id);
  return ids;
}

class IntegrationFixture : public ::testing::Test {
 protected:
  IntegrationFixture()
      : mapper_(datasets::UnitUniverse(), 9),
        objects_(datasets::MakeUniform(1500, datasets::UnitUniverse(), 42)),
        dsi_(objects_, mapper_, 64, MakeDsiConfig()),
        rtree_(objects_, 64),
        hci_(objects_, mapper_, 64) {}

  static core::DsiConfig MakeDsiConfig() {
    core::DsiConfig c;
    c.num_segments = 2;  // reorganized broadcast, as in the evaluation
    return c;
  }

  hilbert::SpaceMapper mapper_;
  std::vector<SpatialObject> objects_;
  core::DsiIndex dsi_;
  rtree::RtreeIndex rtree_;
  hci::HciIndex hci_;
};

TEST_F(IntegrationFixture, AllIndexesAgreeOnWindowQueries) {
  const auto windows =
      sim::MakeWindowWorkload(6, 0.1, datasets::UnitUniverse(), 7);
  for (const Rect& w : windows) {
    std::set<uint32_t> oracle;
    for (const auto& o : objects_) {
      if (w.Contains(o.location)) oracle.insert(o.id);
    }
    {
      broadcast::ClientSession s(dsi_.program(), 17, broadcast::ErrorModel{},
                                 common::Rng(1));
      core::DsiClient c(dsi_, &s);
      EXPECT_EQ(Ids(c.WindowQuery(w)), oracle);
    }
    {
      broadcast::ClientSession s(rtree_.program(), 17, broadcast::ErrorModel{},
                                 common::Rng(1));
      rtree::RtreeClient c(rtree_, &s);
      EXPECT_EQ(Ids(c.WindowQuery(w)), oracle);
    }
    {
      broadcast::ClientSession s(hci_.program(), 17, broadcast::ErrorModel{},
                                 common::Rng(1));
      hci::HciClient c(hci_, &s);
      EXPECT_EQ(Ids(c.WindowQuery(w)), oracle);
    }
  }
}

TEST_F(IntegrationFixture, AllIndexesAgreeOnKnnDistances) {
  const auto points = sim::MakeKnnWorkload(5, datasets::UnitUniverse(), 9);
  for (const Point& q : points) {
    std::vector<double> oracle;
    for (const auto& o : objects_) {
      oracle.push_back(common::Distance(q, o.location));
    }
    std::sort(oracle.begin(), oracle.end());
    oracle.resize(10);
    auto check = [&](std::vector<SpatialObject> result, const char* name) {
      ASSERT_EQ(result.size(), 10u) << name;
      std::vector<double> got;
      for (const auto& o : result) got.push_back(common::Distance(q, o.location));
      std::sort(got.begin(), got.end());
      for (size_t i = 0; i < 10; ++i) {
        EXPECT_DOUBLE_EQ(got[i], oracle[i]) << name;
      }
    };
    {
      broadcast::ClientSession s(dsi_.program(), 23, broadcast::ErrorModel{},
                                 common::Rng(1));
      core::DsiClient c(dsi_, &s);
      check(c.KnnQuery(q, 10), "dsi");
    }
    {
      broadcast::ClientSession s(rtree_.program(), 23, broadcast::ErrorModel{},
                                 common::Rng(1));
      rtree::RtreeClient c(rtree_, &s);
      check(c.KnnQuery(q, 10), "rtree");
    }
    {
      broadcast::ClientSession s(hci_.program(), 23, broadcast::ErrorModel{},
                                 common::Rng(1));
      hci::HciClient c(hci_, &s);
      check(c.KnnQuery(q, 10), "hci");
    }
  }
}

TEST_F(IntegrationFixture, DsiBeatsHciOnKnnLatency) {
  // The paper's headline kNN result: DSI needs a fraction of HCI's access
  // latency (Figure 11).
  const auto points = sim::MakeKnnWorkload(15, datasets::UnitUniverse(), 11);
  const auto workload = sim::Workload::Knn(points, 10);
  const auto dsi =
      sim::RunWorkload(air::DsiHandle(dsi_), workload, sim::RunOptions{3});
  const auto hci =
      sim::RunWorkload(air::HciHandle(hci_), workload, sim::RunOptions{3});
  EXPECT_LT(dsi.latency_bytes, hci.latency_bytes);
}

TEST_F(IntegrationFixture, DsiBeatsRtreeOnKnnLatency) {
  const auto points = sim::MakeKnnWorkload(15, datasets::UnitUniverse(), 13);
  const auto workload = sim::Workload::Knn(points, 10);
  const auto dsi =
      sim::RunWorkload(air::DsiHandle(dsi_), workload, sim::RunOptions{5});
  const auto rt =
      sim::RunWorkload(air::RtreeHandle(rtree_), workload, sim::RunOptions{5});
  EXPECT_LT(dsi.latency_bytes, rt.latency_bytes);
}

TEST(PaperScaleTest, DsiBeatsBothOnNnTuning) {
  // The tuning advantage (Figure 11) emerges at the paper's scale of
  // 10,000 objects; at the small fixture scale DSI's per-frame tables
  // outweigh the savings, so this test builds the full-size broadcast.
  const hilbert::SpaceMapper mapper(datasets::UnitUniverse(),
                                    hilbert::ChooseOrder(10000));
  const auto objects = datasets::MakeUniformDefault();
  core::DsiConfig cfg;
  cfg.num_segments = 2;
  const core::DsiIndex dsi(objects, mapper, 64, cfg);
  const rtree::RtreeIndex rt(objects, 64);
  const hci::HciIndex hci(objects, mapper, 64);
  const auto points = sim::MakeKnnWorkload(20, datasets::UnitUniverse(), 29);
  const auto workload = sim::Workload::Knn(points, 1);
  const auto md =
      sim::RunWorkload(air::DsiHandle(dsi), workload, sim::RunOptions{7});
  const auto mr =
      sim::RunWorkload(air::RtreeHandle(rt), workload, sim::RunOptions{7});
  const auto mh =
      sim::RunWorkload(air::HciHandle(hci), workload, sim::RunOptions{7});
  // Latency dominance is the paper's headline and reproduces robustly.
  EXPECT_LT(md.latency_bytes, mr.latency_bytes);
  EXPECT_LT(md.latency_bytes, mh.latency_bytes);
  // Tuning beats the R-tree; against our (stronger-than-original) HCI
  // implementation the NN tuning is roughly at parity (see EXPERIMENTS.md),
  // so only competitiveness is asserted.
  EXPECT_LT(md.tuning_bytes, mr.tuning_bytes);
  EXPECT_LT(md.tuning_bytes, 2.5 * mh.tuning_bytes);
}

TEST_F(IntegrationFixture, RealLikeDatasetWorksEndToEnd) {
  const auto real = datasets::MakeRealLike();
  const hilbert::SpaceMapper mapper(datasets::UnitUniverse(), 9);
  const core::DsiIndex dsi(real, mapper, 64, MakeDsiConfig());
  const auto windows =
      sim::MakeWindowWorkload(4, 0.1, datasets::UnitUniverse(), 15);
  const auto m = sim::RunWorkload(air::DsiHandle(dsi),
                                  sim::Workload::Window(windows),
                                  sim::RunOptions{7});
  EXPECT_EQ(m.incomplete, 0u);
  broadcast::ClientSession s(dsi.program(), 5, broadcast::ErrorModel{},
                             common::Rng(2));
  core::DsiClient c(dsi, &s);
  const auto result = c.WindowQuery(windows[0]);
  std::set<uint32_t> oracle;
  for (const auto& o : real) {
    if (windows[0].Contains(o.location)) oracle.insert(o.id);
  }
  EXPECT_EQ(Ids(result), oracle);
}

}  // namespace
}  // namespace dsi
